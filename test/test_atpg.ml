(* Tests for lib/atpg: five-valued algebra, PODEM, SAT-ATPG, LFSR,
   full-scan, top-off flow. The strongest checks are the cross-engine
   agreements: PODEM and SAT-ATPG must agree on testability, and every
   generated test must actually detect its target under fault
   simulation. *)

module Prng = Mutsamp_util.Prng
module Netlist = Mutsamp_netlist.Netlist
module Gate = Mutsamp_netlist.Gate
module B = Netlist.Builder
module Fault = Mutsamp_fault.Fault
module Fsim = Mutsamp_fault.Fsim
module Inject = Mutsamp_fault.Inject
module V = Mutsamp_atpg.Fivevalued
module Podem = Mutsamp_atpg.Podem
module Satgen = Mutsamp_atpg.Satgen
module Prpg = Mutsamp_atpg.Prpg
module Scan = Mutsamp_atpg.Scan
module Topoff = Mutsamp_atpg.Topoff
module Parser = Mutsamp_hdl.Parser
module Check = Mutsamp_hdl.Check
module Flow = Mutsamp_synth.Flow

(* Local stand-ins for the deprecated Fsim int-code conveniences. *)
let pattern_of_code nl code =
  Mutsamp_fault.Pattern.of_code
    ~inputs:(Array.length nl.Mutsamp_netlist.Netlist.input_nets)
    code

let patterns_of_codes nl codes = Array.map (pattern_of_code nl) codes


let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let parse src =
  Check.elaborate (Mutsamp_robust.Error.ok_exn (Parser.design_result src))

let ok_exn = Mutsamp_robust.Error.ok_exn

let full_adder () =
  let b = B.create "fa" in
  let a = B.input b "a" and bb = B.input b "b" and cin = B.input b "cin" in
  let s = B.xor_ b (B.xor_ b a bb) cin in
  let cout = B.or_ b (B.and_ b a bb) (B.or_ b (B.and_ b a cin) (B.and_ b bb cin)) in
  B.output b "s" s;
  B.output b "cout" cout;
  B.finalize b

(* A netlist with a redundant (untestable) fault: y = a or (a and b).
   The AND gate is functionally redundant, so its b-input stuck-at-0 is
   untestable. *)
let redundant_netlist () =
  let b = B.create "red" in
  let a = B.input b "a" and bb = B.input b "bb" in
  (* Defeat the builder's simplifications with a manually built gate
     arrangement: or(a, and(a, bb)) = a. *)
  let band = B.and_ b a bb in
  let y = B.or_ b a band in
  B.output b "y" y;
  B.finalize b

(* ------------------------------------------------------------------ *)
(* Fivevalued                                                         *)
(* ------------------------------------------------------------------ *)

let test_fv_projections () =
  check_bool "D good" true (V.good V.D = V.One);
  check_bool "D faulty" true (V.faulty V.D = V.Zero);
  check_bool "Dbar good" true (V.good V.Dbar = V.Zero);
  check_bool "combine" true (V.combine V.One V.Zero = V.D);
  check_bool "combine X" true (V.combine V.X V.Zero = V.X)

let test_fv_and_table () =
  check_bool "D and 1 = D" true (V.land_ V.D V.One = V.D);
  check_bool "D and 0 = 0" true (V.land_ V.D V.Zero = V.Zero);
  check_bool "D and D' = 0" true (V.land_ V.D V.Dbar = V.Zero);
  check_bool "D and X = X" true (V.land_ V.D V.X = V.X);
  check_bool "D and D = D" true (V.land_ V.D V.D = V.D)

let test_fv_not_or_xor () =
  check_bool "not D = D'" true (V.lnot V.D = V.Dbar);
  check_bool "D or D' = 1" true (V.lor_ V.D V.Dbar = V.One);
  check_bool "D xor D = 0" true (V.lxor_ V.D V.D = V.Zero);
  check_bool "D xor D' = 1" true (V.lxor_ V.D V.Dbar = V.One);
  check_bool "D xor 0 = D" true (V.lxor_ V.D V.Zero = V.D)

let test_fv_gate_eval () =
  check_bool "nand" true (V.eval Gate.Nand V.D V.One = V.Dbar);
  check_bool "nor" true (V.eval Gate.Nor V.Dbar V.Zero = V.D);
  check_bool "controlling and" true (V.controlling_value Gate.And = Some false);
  check_bool "controlling nor" true (V.controlling_value Gate.Nor = Some true);
  check_bool "xor no controlling" true (V.controlling_value Gate.Xor = None)

(* ------------------------------------------------------------------ *)
(* Podem                                                              *)
(* ------------------------------------------------------------------ *)

(* Oracle: does pattern [p] detect fault [f] on netlist [nl]? *)
let detects nl f p =
  let r = Fsim.run nl ~faults:[ f ] ~sequence:[| p |] in
  r.Fsim.detected = 1

let test_podem_finds_tests_full_adder () =
  let nl = full_adder () in
  List.iter
    (fun f ->
      match ok_exn (Podem.find_test nl f) with
      | Some p, _ ->
        check_bool
          (Printf.sprintf "test for %s detects" (Fault.to_string f))
          true (detects nl f p)
      | None, _ ->
        Alcotest.fail ("full adder fault should be testable: " ^ Fault.to_string f))
    (Fault.full_list nl)

let test_podem_untestable_redundant () =
  let nl = redundant_netlist () in
  (* Find the AND gate's bb-input fault: with single fanout of bb the
     stem fault bb SA0 is the redundant one. *)
  let bb = Netlist.find_input nl "bb" in
  let f = { Fault.site = Fault.Stem bb; polarity = Fault.Stuck_at_0 } in
  (match ok_exn (Podem.find_test nl f) with
   | None, _ -> ()
   | Some p, _ ->
     Alcotest.fail
       (Printf.sprintf "redundant fault got test %s (detects=%b)"
          (Mutsamp_fault.Pattern.to_string p) (detects nl f p)))

let test_podem_stats_populated () =
  let nl = full_adder () in
  let f = List.hd (Fault.full_list nl) in
  let _, stats = ok_exn (Podem.find_test nl f) in
  check_bool "implications counted" true (stats.Podem.implications > 0)

let test_podem_rejects_sequential () =
  let b = B.create "seq" in
  let x = B.input b "x" in
  let q = B.dff b ~init:false in
  B.connect_dff b q ~d:x;
  B.output b "y" q;
  let nl = B.finalize b in
  (try
     ignore (Podem.find_test nl { Fault.site = Fault.Stem x; polarity = Fault.Stuck_at_0 });
     Alcotest.fail "should reject"
   with Invalid_argument _ -> ())

(* ------------------------------------------------------------------ *)
(* Satgen & cross-engine agreement                                    *)
(* ------------------------------------------------------------------ *)

let cross_check nl =
  List.iter
    (fun f ->
      let podem = Podem.find_test nl f in
      let sat = ok_exn (Satgen.generate nl f) in
      match podem, sat with
      | Ok (Some p, _), Satgen.Test q ->
        check_bool "podem test detects" true (detects nl f p);
        check_bool "sat test detects" true (detects nl f q)
      | Ok (None, _), Satgen.Untestable -> ()
      | Error _, _ -> ()  (* abort is inconclusive, not a disagreement *)
      | Ok (Some _, _), Satgen.Untestable ->
        Alcotest.fail ("engines disagree (podem testable): " ^ Fault.to_string f)
      | Ok (None, _), Satgen.Test _ ->
        Alcotest.fail ("engines disagree (sat testable): " ^ Fault.to_string f))
    (Fault.full_list nl)

let test_engines_agree_full_adder () = cross_check (full_adder ())

let test_engines_agree_redundant () = cross_check (redundant_netlist ())

let test_engines_agree_alu () =
  cross_check
    (Flow.synthesize
       (parse
          {|design alu is
  input a : unsigned(3);
  input b : unsigned(3);
  input op : bit;
  output y : unsigned(3);
begin
  if op = '1' then
    y := a + b;
  else
    y := a and b;
  end if;
end design;|}))

(* ------------------------------------------------------------------ *)
(* Scoap                                                              *)
(* ------------------------------------------------------------------ *)

module Scoap = Mutsamp_atpg.Scoap

let test_scoap_and_gate () =
  (* y = a and b: CC0(y)=min(1,1)+1=2, CC1(y)=1+1+1=3,
     CO(a)=CO(y)+CC1(b)+1=0+1+1=2. *)
  let b = B.create "t" in
  let a = B.input b "a" and bb = B.input b "b" in
  let y = B.and_ b a bb in
  B.output b "y" y;
  let nl = B.finalize b in
  let s = Scoap.compute nl in
  check_int "cc0 y" 2 s.Scoap.cc0.(y);
  check_int "cc1 y" 3 s.Scoap.cc1.(y);
  check_int "co a" 2 s.Scoap.co.(a);
  check_int "co y" 0 s.Scoap.co.(y);
  check_int "cc0 pi" 1 s.Scoap.cc0.(a);
  check_int "harder value of AND output is 1" 1 (Scoap.harder_value s y)

let test_scoap_not_chain () =
  (* y = not (not a): each inversion adds 1 and swaps. *)
  let b = B.create "t" in
  let a = B.input b "a" in
  (* Defeat the builder's double-negation rewrite with an intervening
     fanout use. *)
  let n1 = B.not_ b a in
  let y = B.nand_ b n1 n1 in
  (* nand(x,x) folds to not x; check controllabilities through it *)
  B.output b "y" y;
  let nl = B.finalize b in
  let s = Scoap.compute nl in
  check_bool "cc0 of y relates to cc1 of n1" true (s.Scoap.cc0.(y) > s.Scoap.cc1.(n1) - 2)

let test_scoap_constants () =
  let b = B.create "t" in
  let a = B.input b "a" in
  let k = B.const b true in
  B.output b "y" (B.xor_ b a k);
  let nl = B.finalize b in
  let s = Scoap.compute nl in
  check_int "const1 cc1" 0 s.Scoap.cc1.(k);
  check_bool "const1 cc0 infinite" true (s.Scoap.cc0.(k) >= Scoap.infinity_cost)

let test_scoap_observability_fanout_min () =
  (* A stem feeding an easy and a hard path takes the cheap one. *)
  let b = B.create "t" in
  let a = B.input b "a" and c = B.input b "c" and d = B.input b "d" in
  let hard = B.and_ b (B.and_ b a c) d in
  B.output b "direct" a;  (* a is also a PO: CO(a) = 0 *)
  B.output b "hard" hard;
  let nl = B.finalize b in
  let s = Scoap.compute nl in
  check_int "stem takes min" 0 s.Scoap.co.(a)

let test_scoap_dff_boundaries () =
  let b = B.create "t" in
  let x = B.input b "x" in
  let q = B.dff b ~init:false in
  B.connect_dff b q ~d:(B.and_ b q x);
  B.output b "y" q;
  let nl = B.finalize b in
  let s = Scoap.compute nl in
  check_int "dff q controllable" 1 s.Scoap.cc0.(q);
  let d = nl.Netlist.gates.(q).Mutsamp_netlist.Gate.fanins.(0) in
  check_int "d pin observable" 0 s.Scoap.co.(d)

(* ------------------------------------------------------------------ *)
(* Prpg                                                               *)
(* ------------------------------------------------------------------ *)

let test_lfsr_maximal_small_widths () =
  List.iter
    (fun w ->
      check_bool
        (Printf.sprintf "width %d maximal" w)
        true
        (Prpg.lfsr_period_is_maximal ~width:w))
    [ 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12; 15; 16 ]

let test_lfsr_deterministic () =
  let a = Prpg.lfsr_sequence ~width:8 ~seed:5 ~length:100 in
  let b = Prpg.lfsr_sequence ~width:8 ~seed:5 ~length:100 in
  check_bool "same" true (a = b)

let test_lfsr_zero_seed_replaced () =
  let seq = Prpg.lfsr_sequence ~width:8 ~seed:0 ~length:10 in
  Array.iter (fun s -> check_bool "never zero" true (s <> 0)) seq

let test_lfsr_values_in_range () =
  let seq = Prpg.lfsr_sequence ~width:5 ~seed:3 ~length:64 in
  Array.iter (fun s -> check_bool "5 bits" true (s >= 0 && s < 32)) seq

let test_uniform_sequence_range () =
  let prng = Prng.create 7 in
  let seq = Prpg.uniform_sequence prng ~bits:10 ~length:200 in
  Array.iter
    (fun s ->
      check_int "10 bits wide" 10 (Mutsamp_fault.Pattern.width s);
      let code = Mutsamp_fault.Pattern.to_code s in
      check_bool "10 bits" true (code >= 0 && code < 1024))
    seq

let test_uniform_sequence_wide () =
  (* Widths past the old 62-bit code ceiling draw per bit; the patterns
     must carry the full width and not be degenerate. *)
  let prng = Prng.create 11 in
  let seq = Prpg.uniform_sequence prng ~bits:128 ~length:50 in
  check_int "width kept" 128 (Mutsamp_fault.Pattern.width seq.(0));
  let total =
    Array.fold_left (fun acc s -> acc + Mutsamp_util.Packvec.popcount s) 0 seq
  in
  (* 6400 fair coin flips: astronomically unlikely to stray this far. *)
  check_bool "roughly balanced" true (total > 2500 && total < 3900)

(* ------------------------------------------------------------------ *)
(* Scan                                                               *)
(* ------------------------------------------------------------------ *)

let counter_netlist () =
  Flow.synthesize
    (parse
       {|design counter is
  input en : bit;
  output q : unsigned(3);
  reg count : unsigned(3) := 0;
begin
  q := count;
  if en = '1' then
    count := count + 1;
  end if;
end design;|})

let test_scan_makes_combinational () =
  let nl = counter_netlist () in
  let scanned = Scan.full_scan nl in
  check_int "no dffs" 0 (Netlist.num_dffs scanned);
  check_int "inputs grew" (Array.length nl.Netlist.input_nets + 3)
    (Array.length scanned.Netlist.input_nets);
  check_int "outputs grew" (Array.length nl.Netlist.output_list + 3)
    (Array.length scanned.Netlist.output_list)

let test_scan_preserves_combinational_logic () =
  (* With scan inputs equal to a state s and en=1, scan_d must read
     s + 1. *)
  let scanned = Scan.full_scan (counter_netlist ()) in
  let sim = Mutsamp_netlist.Bitsim.create scanned in
  let input_index name =
    let names = Netlist.input_names scanned in
    let rec find k = if names.(k) = name then k else find (k + 1) in
    find 0
  in
  let out_index name =
    let rec find k =
      if fst scanned.Netlist.output_list.(k) = name then k else find (k + 1)
    in
    find 0
  in
  for s = 0 to 7 do
    let words = Array.make (Array.length scanned.Netlist.input_nets) 0 in
    words.(input_index "en") <- Mutsamp_netlist.Bitsim.all_ones;
    for bit = 0 to 2 do
      if (s lsr bit) land 1 = 1 then
        words.(input_index (Scan.scan_input_name bit)) <- Mutsamp_netlist.Bitsim.all_ones
    done;
    let outs = Mutsamp_netlist.Bitsim.step sim words in
    let next =
      (if outs.(out_index (Scan.scan_output_name 0)) land 1 = 1 then 1 else 0)
      lor (if outs.(out_index (Scan.scan_output_name 1)) land 1 = 1 then 2 else 0)
      lor (if outs.(out_index (Scan.scan_output_name 2)) land 1 = 1 then 4 else 0)
    in
    check_int (Printf.sprintf "next state of %d" s) ((s + 1) land 7) next
  done

(* ------------------------------------------------------------------ *)
(* Bist                                                               *)
(* ------------------------------------------------------------------ *)

module Bist = Mutsamp_atpg.Bist

let test_misr_sensitivity () =
  let taps = Prpg.lfsr_taps 16 in
  let s1 = Bist.misr_signature ~width:16 ~taps [ 1; 2; 3; 4 ] in
  let s2 = Bist.misr_signature ~width:16 ~taps [ 1; 2; 3; 5 ] in
  let s3 = Bist.misr_signature ~width:16 ~taps [ 1; 2; 4; 3 ] in
  check_bool "value change detected" true (s1 <> s2);
  check_bool "order change detected" true (s1 <> s3)

let test_bist_full_adder () =
  let nl = full_adder () in
  let faults = Fault.full_list nl in
  let r = Bist.run nl ~faults ~seed:1 ~length:32 in
  (* 32 LFSR patterns on 3 inputs cycle the whole space several times:
     everything detectable is detected, and at 16-bit signatures over 4
     patterns' worth of entropy no aliasing is expected. *)
  check_int "comparison detects all" (List.length faults) r.Bist.comparison_detected;
  check_int "no aliasing" 0 r.Bist.aliased;
  check_int "signature = comparison" r.Bist.comparison_detected r.Bist.signature_detected

let test_bist_signature_deterministic () =
  let nl = full_adder () in
  let faults = Fault.full_list nl in
  let r1 = Bist.run nl ~faults ~seed:3 ~length:16 in
  let r2 = Bist.run nl ~faults ~seed:3 ~length:16 in
  check_int "same signature" r1.Bist.good_signature r2.Bist.good_signature

let test_bist_rejects_sequential () =
  let nl = counter_netlist () in
  (try
     ignore (Bist.run nl ~faults:(Fault.full_list nl) ~seed:1 ~length:8);
     Alcotest.fail "should reject"
   with Invalid_argument _ -> ())

(* ------------------------------------------------------------------ *)
(* Unroll / Seqatpg                                                   *)
(* ------------------------------------------------------------------ *)

module Unroll = Mutsamp_atpg.Unroll
module Seqatpg = Mutsamp_atpg.Seqatpg
module Bitsim = Mutsamp_netlist.Bitsim

let test_unroll_matches_sequential_sim () =
  (* The k-frame expansion's outputs equal k sequential steps. *)
  let nl = counter_netlist () in
  let frames = 5 in
  let unrolled = Unroll.expand ~frames nl in
  check_int "no dffs" 0 (Netlist.num_dffs unrolled);
  let seq_sim = Bitsim.create nl in
  Bitsim.reset seq_sim;
  let prng = Prng.create 21 in
  let inputs = Array.init frames (fun _ -> Prng.int prng 2) in
  let seq_outs =
    Array.map (fun en -> Bitsim.step seq_sim [| (if en = 1 then Bitsim.all_ones else 0) |]) inputs
  in
  let unrolled_sim = Bitsim.create unrolled in
  let words =
    Array.map
      (fun net ->
        (* input order in the unrolled netlist is frame-major *)
        ignore net;
        0)
      unrolled.Netlist.input_nets
  in
  Array.iteri
    (fun k _ ->
      let name =
        (Netlist.input_names unrolled).(k)
      in
      (* name is "en@f" *)
      let f = int_of_string (String.sub name 3 (String.length name - 3)) in
      words.(k) <- (if inputs.(f) = 1 then Bitsim.all_ones else 0))
    unrolled.Netlist.input_nets;
  let outs = Bitsim.step unrolled_sim words in
  Array.iteri
    (fun j (name, _) ->
      (* name is "q[i]@f" or similar; find the frame and original pos *)
      let at = String.rindex name '@' in
      let f = int_of_string (String.sub name (at + 1) (String.length name - at - 1)) in
      let base = String.sub name 0 at in
      let orig_index =
        let rec find k =
          if fst nl.Netlist.output_list.(k) = base then k else find (k + 1)
        in
        find 0
      in
      check_int
        (Printf.sprintf "output %s" name)
        (seq_outs.(f).(orig_index) land 1)
        (outs.(j) land 1))
    unrolled.Netlist.output_list

let test_seqatpg_counter_faults () =
  let nl = counter_netlist () in
  let faults = Fault.full_list nl in
  let detected = ref 0 and missed = ref 0 in
  List.iter
    (fun f ->
      match ok_exn (Seqatpg.generate ~max_frames:10 nl f) with
      | Seqatpg.Test seq ->
        incr detected;
        (* Verify by sequential fault simulation. *)
        let r = Fsim.run nl ~faults:[ f ] ~sequence:seq in
        check_int (Fault.to_string f ^ " verified") 1 r.Fsim.detected
      | Seqatpg.No_test_within _ -> incr missed)
    faults;
  check_bool "most faults get sequences" true (!detected > 3 * List.length faults / 4)

let test_seqatpg_shortest_sequence () =
  (* A fault visible only when the counter reaches 4 (q[2] stuck-at-0)
     needs at least 5 cycles from reset with en=1. *)
  let nl = counter_netlist () in
  let q2 = Netlist.find_output nl "q[2]" in
  let f = { Fault.site = Fault.Stem q2; polarity = Fault.Stuck_at_0 } in
  (match ok_exn (Seqatpg.generate ~max_frames:10 nl f) with
   | Seqatpg.Test seq ->
     check_int "five cycles" 5 (Array.length seq);
     let r = Fsim.run nl ~faults:[ f ] ~sequence:seq in
     check_int "verified" 1 r.Fsim.detected
   | Seqatpg.No_test_within _ -> Alcotest.fail "should find a sequence")

let test_seqatpg_budget () =
  let nl = counter_netlist () in
  let q2 = Netlist.find_output nl "q[2]" in
  let f = { Fault.site = Fault.Stem q2; polarity = Fault.Stuck_at_0 } in
  (match ok_exn (Seqatpg.generate ~max_frames:3 nl f) with
   | Seqatpg.No_test_within 3 -> ()
   | Seqatpg.No_test_within _ | Seqatpg.Test _ ->
     Alcotest.fail "needs more than 3 frames")

let test_seqatpg_generate_set () =
  let nl = counter_netlist () in
  let faults = Fault.full_list nl in
  let sequences, undetected = Seqatpg.generate_set ~max_frames:10 nl ~faults in
  check_bool "some sequences" true (sequences <> []);
  (* Replaying every sequence detects everything not reported
     undetected. *)
  let detectable =
    List.filter (fun f -> not (List.exists (Fault.equal f) undetected)) faults
  in
  let still_missing =
    List.filter
      (fun f ->
        List.for_all
          (fun seq ->
            (Fsim.run nl ~faults:[ f ] ~sequence:seq).Fsim.detected = 0)
          sequences)
      detectable
  in
  check_int "all covered" 0 (List.length still_missing)

(* ------------------------------------------------------------------ *)
(* Topoff                                                             *)
(* ------------------------------------------------------------------ *)

let test_topoff_reaches_full_coverage () =
  let nl = full_adder () in
  let faults = Fault.full_list nl in
  let r = Topoff.run nl ~faults ~seed_patterns:[||] in
  Alcotest.(check (float 1e-6)) "100% of testable" 100. r.Topoff.final_coverage_percent;
  check_int "all faults accounted" (List.length faults)
    (r.Topoff.seed_detected + r.Topoff.random_detected + r.Topoff.atpg_detected
    + r.Topoff.untestable + r.Topoff.aborted)

let test_topoff_seed_reduces_work () =
  let nl = full_adder () in
  let faults = Fault.full_list nl in
  (* A full exhaustive seed leaves nothing for the other phases. *)
  let r =
    Topoff.run nl ~faults
      ~seed_patterns:(patterns_of_codes nl (Array.init 8 (fun i -> i)))
  in
  check_int "everything from seed" (List.length faults) r.Topoff.seed_detected;
  check_int "no atpg calls" 0 r.Topoff.atpg_calls;
  check_int "no random patterns" 0 r.Topoff.random_patterns

let test_topoff_sat_engine () =
  let nl = redundant_netlist () in
  let faults = Fault.full_list nl in
  let r = Topoff.run ~generator:Topoff.Use_sat ~random_budget:0 nl ~faults ~seed_patterns:[||] in
  check_bool "found untestable" true (r.Topoff.untestable >= 1);
  Alcotest.(check (float 1e-6)) "100% of testable" 100. r.Topoff.final_coverage_percent

let test_topoff_final_test_set_detects_everything () =
  let nl = full_adder () in
  let faults = Fault.full_list nl in
  let r = Topoff.run nl ~faults ~seed_patterns:(patterns_of_codes nl [| 0b111 |]) in
  let check_run = Fsim.run nl ~faults ~sequence:r.Topoff.test_set in
  check_int "replay detects all testable"
    (List.length faults - r.Topoff.untestable - r.Topoff.aborted)
    check_run.Fsim.detected

(* Property: injected-netlist semantics match the simulator's built-in
   injection on random patterns. *)
let prop_inject_matches_builtin =
  let gen = QCheck.Gen.(pair (int_range 0 5000) (int_range 0 7)) in
  QCheck.Test.make ~name:"Inject.apply = Bitsim injection" ~count:100
    (QCheck.make gen) (fun (seed, pattern) ->
      let nl = full_adder () in
      let faults = Array.of_list (Fault.full_list nl) in
      let prng = Prng.create seed in
      let f = faults.(Prng.int prng (Array.length faults)) in
      let faulty_nl = Inject.apply nl f in
      let sim_builtin = Mutsamp_netlist.Bitsim.create nl in
      let sim_faulty = Mutsamp_netlist.Bitsim.create faulty_nl in
      let words netlist =
        Array.init (Array.length netlist.Netlist.input_nets) (fun k ->
            if (pattern lsr k) land 1 = 1 then Mutsamp_netlist.Bitsim.all_ones else 0)
      in
      let built_in =
        Mutsamp_netlist.Bitsim.step_injected sim_builtin (words nl)
          ~inj:(Fault.injection f) ~stuck:(Fault.stuck_word f)
      in
      let via_netlist = Mutsamp_netlist.Bitsim.step sim_faulty (words faulty_nl) in
      built_in = via_netlist)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ( "atpg.fivevalued",
      [
        Alcotest.test_case "projections" `Quick test_fv_projections;
        Alcotest.test_case "and table" `Quick test_fv_and_table;
        Alcotest.test_case "not/or/xor" `Quick test_fv_not_or_xor;
        Alcotest.test_case "gate eval" `Quick test_fv_gate_eval;
      ] );
    ( "atpg.podem",
      [
        Alcotest.test_case "full adder tests" `Quick test_podem_finds_tests_full_adder;
        Alcotest.test_case "redundant untestable" `Quick test_podem_untestable_redundant;
        Alcotest.test_case "stats populated" `Quick test_podem_stats_populated;
        Alcotest.test_case "rejects sequential" `Quick test_podem_rejects_sequential;
      ] );
    ( "atpg.cross_engine",
      [
        Alcotest.test_case "agree on full adder" `Quick test_engines_agree_full_adder;
        Alcotest.test_case "agree on redundant" `Quick test_engines_agree_redundant;
        Alcotest.test_case "agree on alu" `Quick test_engines_agree_alu;
      ] );
    ( "atpg.scoap",
      [
        Alcotest.test_case "and gate" `Quick test_scoap_and_gate;
        Alcotest.test_case "inverter costs" `Quick test_scoap_not_chain;
        Alcotest.test_case "constants" `Quick test_scoap_constants;
        Alcotest.test_case "fanout observability" `Quick test_scoap_observability_fanout_min;
        Alcotest.test_case "dff boundaries" `Quick test_scoap_dff_boundaries;
      ] );
    ( "atpg.prpg",
      [
        Alcotest.test_case "lfsr maximal periods" `Quick test_lfsr_maximal_small_widths;
        Alcotest.test_case "lfsr deterministic" `Quick test_lfsr_deterministic;
        Alcotest.test_case "zero seed replaced" `Quick test_lfsr_zero_seed_replaced;
        Alcotest.test_case "values in range" `Quick test_lfsr_values_in_range;
        Alcotest.test_case "uniform range" `Quick test_uniform_sequence_range;
        Alcotest.test_case "uniform wide" `Quick test_uniform_sequence_wide;
      ] );
    ( "atpg.scan",
      [
        Alcotest.test_case "makes combinational" `Quick test_scan_makes_combinational;
        Alcotest.test_case "preserves logic" `Quick test_scan_preserves_combinational_logic;
      ] );
    ( "atpg.bist",
      [
        Alcotest.test_case "misr sensitivity" `Quick test_misr_sensitivity;
        Alcotest.test_case "full adder session" `Quick test_bist_full_adder;
        Alcotest.test_case "deterministic" `Quick test_bist_signature_deterministic;
        Alcotest.test_case "rejects sequential" `Quick test_bist_rejects_sequential;
      ] );
    ( "atpg.sequential",
      [
        Alcotest.test_case "unroll matches sim" `Quick test_unroll_matches_sequential_sim;
        Alcotest.test_case "counter faults" `Quick test_seqatpg_counter_faults;
        Alcotest.test_case "shortest sequence" `Quick test_seqatpg_shortest_sequence;
        Alcotest.test_case "frame budget" `Quick test_seqatpg_budget;
        Alcotest.test_case "generate set" `Quick test_seqatpg_generate_set;
      ] );
    ( "atpg.topoff",
      [
        Alcotest.test_case "full coverage" `Quick test_topoff_reaches_full_coverage;
        Alcotest.test_case "seed reduces work" `Quick test_topoff_seed_reduces_work;
        Alcotest.test_case "sat engine" `Quick test_topoff_sat_engine;
        Alcotest.test_case "final set detects all" `Quick test_topoff_final_test_set_detects_everything;
        q prop_inject_matches_builtin;
      ] );
  ]
