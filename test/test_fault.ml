(* Tests for lib/fault: fault lists, collapsing, serial and parallel
   fault simulation, coverage curves. *)

module Prng = Mutsamp_util.Prng
module Netlist = Mutsamp_netlist.Netlist
module Bitsim = Mutsamp_netlist.Bitsim
module Gate = Mutsamp_netlist.Gate
module B = Netlist.Builder
module Fault = Mutsamp_fault.Fault
module Collapse = Mutsamp_fault.Collapse
module Fsim = Mutsamp_fault.Fsim
module Parser = Mutsamp_hdl.Parser
module Check = Mutsamp_hdl.Check
module Flow = Mutsamp_synth.Flow

(* Local stand-ins for the deprecated Fsim int-code conveniences. *)
let pattern_of_code nl code =
  Mutsamp_fault.Pattern.of_code
    ~inputs:(Array.length nl.Mutsamp_netlist.Netlist.input_nets)
    code

let patterns_of_codes nl codes = Array.map (pattern_of_code nl) codes


let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let parse src =
  Check.elaborate (Mutsamp_robust.Error.ok_exn (Parser.design_result src))

let and_netlist () =
  let b = B.create "and2" in
  let a = B.input b "a" and bb = B.input b "b" in
  B.output b "y" (B.and_ b a bb);
  B.finalize b

let full_adder () =
  let b = B.create "fa" in
  let a = B.input b "a" and bb = B.input b "b" and cin = B.input b "cin" in
  let s = B.xor_ b (B.xor_ b a bb) cin in
  let cout = B.or_ b (B.and_ b a bb) (B.or_ b (B.and_ b a cin) (B.and_ b bb cin)) in
  B.output b "s" s;
  B.output b "cout" cout;
  B.finalize b

let counter_netlist () =
  Flow.synthesize
    (parse
       {|design counter is
  input en : bit;
  output q : unsigned(3);
  reg count : unsigned(3) := 0;
begin
  q := count;
  if en = '1' then
    count := count + 1;
  end if;
end design;|})

(* ------------------------------------------------------------------ *)
(* Fault lists                                                        *)
(* ------------------------------------------------------------------ *)

let test_full_list_and_gate () =
  let nl = and_netlist () in
  let faults = Fault.full_list nl in
  (* 3 nets (a, b, y), no fanout > 1 -> 6 stem faults, no branches. *)
  check_int "six faults" 6 (List.length faults);
  check_bool "no branch faults" true
    (List.for_all
       (fun (f : Fault.t) -> match f.site with Fault.Stem _ -> true | Fault.Branch _ -> false)
       faults)

let test_full_list_has_branches_on_fanout () =
  let nl = full_adder () in
  let faults = Fault.full_list nl in
  check_bool "has branch faults" true
    (List.exists
       (fun (f : Fault.t) -> match f.site with Fault.Branch _ -> true | Fault.Stem _ -> false)
       faults)

let test_full_list_excludes_constants () =
  let b = B.create "c" in
  let a = B.input b "a" in
  let k = B.const b true in
  B.output b "y" (B.xor_ b a k);
  let nl = B.finalize b in
  let faults = Fault.full_list nl in
  List.iter
    (fun (f : Fault.t) ->
      match f.site with
      | Fault.Stem net ->
        (match nl.Netlist.gates.(net).Gate.kind with
         | Gate.Const _ -> Alcotest.fail "constant stem fault present"
         | _ -> ())
      | Fault.Branch _ -> ())
    faults

let test_full_list_deterministic () =
  let nl = full_adder () in
  check_bool "same list" true (Fault.full_list nl = Fault.full_list nl)

(* ------------------------------------------------------------------ *)
(* Collapse                                                           *)
(* ------------------------------------------------------------------ *)

let test_collapse_reduces () =
  let nl = full_adder () in
  let c = Collapse.run nl in
  check_bool "collapsed smaller" true (c.Collapse.collapsed_size < c.Collapse.full_size);
  check_bool "ratio sane" true (Collapse.ratio c > 0.3 && Collapse.ratio c < 1.0)

let test_collapse_classes_consistent () =
  let nl = full_adder () in
  let c = Collapse.run nl in
  (* Every fault's representative must itself map to itself. *)
  List.iter
    (fun f ->
      let r = c.Collapse.class_of f in
      check_bool "idempotent" true (Fault.equal (c.Collapse.class_of r) r))
    (Fault.full_list nl)

let test_collapse_and_rule () =
  (* For y = a and b with single fanouts: a SA0 ≡ b SA0 ≡ y SA0. *)
  let nl = and_netlist () in
  let c = Collapse.run nl in
  let a = Netlist.find_input nl "a" in
  let b = Netlist.find_input nl "b" in
  let y = Netlist.find_output nl "y" in
  let cls net =
    c.Collapse.class_of { Fault.site = Fault.Stem net; polarity = Fault.Stuck_at_0 }
  in
  check_bool "a0 = y0" true (Fault.equal (cls a) (cls y));
  check_bool "b0 = y0" true (Fault.equal (cls b) (cls y));
  (* SA1 faults on AND inputs are NOT equivalent. *)
  let cls1 net =
    c.Collapse.class_of { Fault.site = Fault.Stem net; polarity = Fault.Stuck_at_1 }
  in
  check_bool "a1 /= b1" false (Fault.equal (cls1 a) (cls1 b))

(* Soundness of collapsing: faults in one class are detected by exactly
   the same patterns (checked exhaustively on the full adder). *)
let test_collapse_sound_on_full_adder () =
  let nl = full_adder () in
  let c = Collapse.run nl in
  let all = Fault.full_list nl in
  let patterns = patterns_of_codes nl (Array.init 8 (fun i -> i)) in
  let detect_set f =
    let r = Fsim.run nl ~faults:[ f ] ~sequence:patterns in
    (* With a single fault and no dropping subtleties we need the set of
       ALL detecting patterns, so run each pattern alone. *)
    ignore r;
    List.filter
      (fun p ->
        let r = Fsim.run nl ~faults:[ f ] ~sequence:[| p |] in
        r.Fsim.detected = 1)
      (Array.to_list patterns)
  in
  (* Group faults by representative and compare detect sets. *)
  let groups = Hashtbl.create 16 in
  List.iter
    (fun f ->
      let r = c.Collapse.class_of f in
      let cur = Option.value ~default:[] (Hashtbl.find_opt groups r) in
      Hashtbl.replace groups r (f :: cur))
    all;
  Hashtbl.iter
    (fun _ members ->
      match members with
      | [] | [ _ ] -> ()
      | first :: rest ->
        let reference = detect_set first in
        List.iter
          (fun f ->
            check_bool
              (Printf.sprintf "same detect set: %s vs %s" (Fault.to_string first)
                 (Fault.to_string f))
              true
              (detect_set f = reference))
          rest)
    groups

let test_dominance_reduces_further () =
  let nl = full_adder () in
  let c = Collapse.run nl in
  let reduced = Collapse.dominance_reduced nl c in
  check_bool "smaller than equivalence-collapsed" true
    (List.length reduced < c.Collapse.collapsed_size);
  check_bool "nonempty" true (reduced <> [])

(* Soundness of dominance: a test set detecting every reduced fault
   detects every testable fault of the full universe. Checked
   exhaustively on the full adder. *)
let test_dominance_sound () =
  let nl = full_adder () in
  let c = Collapse.run nl in
  let reduced = Collapse.dominance_reduced nl c in
  let all_patterns = patterns_of_codes nl (Array.init 8 (fun i -> i)) in
  (* Build a minimal-ish test set covering the reduced list greedily. *)
  let detects f p =
    (Fsim.run nl ~faults:[ f ]
       ~sequence:[| pattern_of_code nl p |]).Fsim.detected = 1
  in
  let tests =
    List.sort_uniq Stdlib.compare
      (List.filter_map
         (fun f ->
           let rec first p = if p > 7 then None else if detects f p then Some p else first (p + 1) in
           first 0)
         reduced)
  in
  let full = Fault.full_list nl in
  let testable =
    List.filter
      (fun f ->
        (Fsim.run nl ~faults:[ f ] ~sequence:all_patterns).Fsim.detected = 1)
      full
  in
  let r =
    Fsim.run nl ~faults:testable
      ~sequence:(patterns_of_codes nl (Array.of_list tests))
  in
  check_int "reduced-list tests detect all testable faults"
    (List.length testable) r.Fsim.detected

(* ------------------------------------------------------------------ *)
(* Fsim                                                               *)
(* ------------------------------------------------------------------ *)

let test_fsim_and_gate_exhaustive_full_coverage () =
  let nl = and_netlist () in
  let faults = Fault.full_list nl in
  let r =
    Fsim.run nl ~faults
      ~sequence:(patterns_of_codes nl [| 0b00; 0b01; 0b10; 0b11 |])
  in
  check_int "all detected" (List.length faults) r.Fsim.detected;
  Alcotest.(check (float 1e-6)) "coverage 100" 100. (Fsim.coverage_percent r)

let test_fsim_single_pattern_partial () =
  let nl = and_netlist () in
  let faults = Fault.full_list nl in
  (* Pattern a=1,b=1 detects y SA0, a SA0, b SA0 only. *)
  let r =
    Fsim.run nl ~faults ~sequence:(patterns_of_codes nl [| 0b11 |])
  in
  check_int "three detected" 3 r.Fsim.detected

let test_fsim_detection_indices_monotone () =
  let nl = full_adder () in
  let faults = Fault.full_list nl in
  let patterns = patterns_of_codes nl (Array.init 8 (fun i -> i)) in
  let r = Fsim.run nl ~faults ~sequence:patterns in
  Array.iter
    (fun (d : Fsim.detection) ->
      match d.Fsim.detected_at with
      | Some k -> check_bool "index in range" true (k >= 0 && k < 8)
      | None -> ())
    r.Fsim.detections

let test_fsim_coverage_curve_monotone () =
  let nl = full_adder () in
  let faults = Fault.full_list nl in
  let patterns = patterns_of_codes nl (Array.init 8 (fun i -> i)) in
  let r = Fsim.run nl ~faults ~sequence:patterns in
  let curve = Fsim.coverage_curve r in
  check_int "curve length" 9 (List.length curve);
  let rec monotone = function
    | (_, a) :: ((_, b) :: _ as rest) ->
      check_bool "monotone" true (b >= a -. 1e-9);
      monotone rest
    | _ -> ()
  in
  monotone curve;
  (* Curve endpoint equals the report coverage. *)
  let _, last = List.nth curve 8 in
  Alcotest.(check (float 1e-6)) "endpoint" (Fsim.coverage_percent r) last

let test_fsim_length_to_reach () =
  let nl = and_netlist () in
  let faults = Fault.full_list nl in
  let r =
    Fsim.run nl ~faults
      ~sequence:(patterns_of_codes nl [| 0b11; 0b01; 0b10; 0b00 |])
  in
  (match Fsim.length_to_reach r 50.0 with
   | Some n -> check_bool "reasonable prefix" true (n >= 1 && n <= 4)
   | None -> Alcotest.fail "should reach 50%");
  check_bool "cannot exceed final coverage" true
    (Fsim.length_to_reach r 101.0 = None)

let test_fsim_sequential_counter () =
  let nl = counter_netlist () in
  let faults = Fault.full_list nl in
  (* Enable high for 16 cycles exercises the whole count range. *)
  let seq = patterns_of_codes nl (Array.make 16 1) in
  let r = Fsim.run nl ~faults ~sequence:seq in
  check_bool "detects most faults" true
    (Fsim.coverage_percent r > 60.);
  (* A short sequence detects fewer faults. *)
  let r2 =
    Fsim.run nl ~faults
      ~sequence:(patterns_of_codes nl (Array.make 2 1))
  in
  check_bool "short sequence weaker" true (r2.Fsim.detected <= r.Fsim.detected)

let test_fsim_rejects_bad_lanes () =
  (* Every word-parallel engine validates the lane count; lane requests
     are otherwise rounded up to whole 63-bit words. *)
  let comb = and_netlist () in
  List.iter
    (fun engine ->
      try
        ignore
          (Fsim.run ~lanes:0 ~engine comb
             ~faults:(Fault.full_list comb)
             ~sequence:(patterns_of_codes comb [| 3 |]));
        Alcotest.fail "should reject lanes = 0 (combinational)"
      with Invalid_argument _ -> ())
    [ Fsim.Packed; Fsim.Event; Fsim.Compiled ];
  let seq = counter_netlist () in
  (try
     ignore
       (Fsim.run ~lanes:0 ~engine:Fsim.Packed seq
          ~faults:(Fault.full_list seq)
          ~sequence:(patterns_of_codes seq [| 1 |]));
     Alcotest.fail "should reject lanes = 0 (sequential)"
   with Invalid_argument _ -> ())

let test_fsim_auto_dispatch () =
  let comb = and_netlist () in
  let seq = counter_netlist () in
  let r1 =
    Fsim.run comb ~faults:(Fault.full_list comb)
      ~sequence:(patterns_of_codes comb [| 3 |])
  in
  check_bool "comb ran" true (r1.Fsim.total > 0);
  let r2 =
    Fsim.run seq ~faults:(Fault.full_list seq)
      ~sequence:(patterns_of_codes seq [| 1; 1 |])
  in
  check_bool "seq ran" true (r2.Fsim.total > 0)

let test_input_code () =
  let nl = full_adder () in
  let p = Fsim.input_pattern nl [ ("a", true); ("cin", true) ] in
  (* a is input 0, b input 1, cin input 2. *)
  check_int "code" 0b101 (Mutsamp_fault.Pattern.to_code p)

(* Property: serial and parallel engines agree on combinational
   circuits (same detected set and same first-detection indices). *)
let prop_serial_equals_parallel =
  let gen = QCheck.Gen.(pair (int_range 0 10000) (int_range 1 40)) in
  QCheck.Test.make ~name:"serial = parallel fault sim" ~count:60 (QCheck.make gen)
    (fun (seed, n_patterns) ->
      let nl = full_adder () in
      let faults = Fault.full_list nl in
      let prng = Prng.create seed in
      let patterns =
        patterns_of_codes nl (Array.init n_patterns (fun _ -> Prng.int prng 8))
      in
      let rp = Fsim.run ~engine:Fsim.Packed nl ~faults ~sequence:patterns in
      let rs = Fsim.run ~engine:Fsim.Serial nl ~faults ~sequence:patterns in
      rp.Fsim.detected = rs.Fsim.detected
      && Array.for_all2
           (fun (a : Fsim.detection) (b : Fsim.detection) ->
             a.Fsim.detected_at = b.Fsim.detected_at)
           rp.Fsim.detections rs.Fsim.detections)

(* Property: the parallel-fault engine matches the serial one exactly —
   detected sets AND first-detection cycles — on a sequential circuit. *)
let prop_parallel_fault_equals_serial =
  let gen = QCheck.Gen.(pair (int_range 0 100000) (int_range 1 24)) in
  QCheck.Test.make ~name:"parallel-fault = serial fault sim (sequential)" ~count:40
    (QCheck.make gen) (fun (seed, len) ->
      let nl = counter_netlist () in
      let faults = Fault.full_list nl in
      let prng = Prng.create seed in
      let sequence =
        patterns_of_codes nl (Array.init len (fun _ -> Prng.int prng 2))
      in
      let rs = Fsim.run ~engine:Fsim.Serial nl ~faults ~sequence in
      let rp = Fsim.run ~engine:Fsim.Packed nl ~faults ~sequence in
      rs.Fsim.detected = rp.Fsim.detected
      && Array.for_all2
           (fun (a : Fsim.detection) (b : Fsim.detection) ->
             a.Fsim.detected_at = b.Fsim.detected_at)
           rs.Fsim.detections rp.Fsim.detections)

let test_parallel_fault_combinational_too () =
  let nl = full_adder () in
  let faults = Fault.full_list nl in
  let patterns = patterns_of_codes nl (Array.init 8 (fun i -> i)) in
  let rp = Fsim.run ~engine:Fsim.Packed nl ~faults ~sequence:patterns in
  let rc = Fsim.run nl ~faults ~sequence:patterns in
  check_int "same detected" rc.Fsim.detected rp.Fsim.detected

let test_parallel_fault_many_groups () =
  (* More faults than lanes forces several passes. *)
  let nl = counter_netlist () in
  let faults = Fault.full_list nl in
  check_bool "enough faults to need grouping" true (List.length faults > 62);
  let sequence = patterns_of_codes nl (Array.make 16 1) in
  let rp = Fsim.run ~engine:Fsim.Packed nl ~faults ~sequence in
  let rs = Fsim.run ~engine:Fsim.Serial nl ~faults ~sequence in
  check_int "same detected" rs.Fsim.detected rp.Fsim.detected

(* Property: coverage never decreases when patterns are appended. *)
let prop_coverage_monotone_in_patterns =
  let gen = QCheck.Gen.(pair (int_range 0 10000) (int_range 1 20)) in
  QCheck.Test.make ~name:"coverage monotone in pattern count" ~count:50
    (QCheck.make gen) (fun (seed, n) ->
      let nl = full_adder () in
      let faults = Fault.full_list nl in
      let prng = Prng.create seed in
      let patterns =
        patterns_of_codes nl (Array.init (2 * n) (fun _ -> Prng.int prng 8))
      in
      let r1 = Fsim.run nl ~faults ~sequence:(Array.sub patterns 0 n) in
      let r2 = Fsim.run nl ~faults ~sequence:patterns in
      Fsim.coverage_percent r2 >= Fsim.coverage_percent r1 -. 1e-9)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ( "fault.list",
      [
        Alcotest.test_case "and gate list" `Quick test_full_list_and_gate;
        Alcotest.test_case "branches on fanout" `Quick test_full_list_has_branches_on_fanout;
        Alcotest.test_case "constants excluded" `Quick test_full_list_excludes_constants;
        Alcotest.test_case "deterministic" `Quick test_full_list_deterministic;
      ] );
    ( "fault.collapse",
      [
        Alcotest.test_case "reduces" `Quick test_collapse_reduces;
        Alcotest.test_case "classes consistent" `Quick test_collapse_classes_consistent;
        Alcotest.test_case "and rule" `Quick test_collapse_and_rule;
        Alcotest.test_case "sound on full adder" `Quick test_collapse_sound_on_full_adder;
        Alcotest.test_case "dominance reduces" `Quick test_dominance_reduces_further;
        Alcotest.test_case "dominance sound" `Quick test_dominance_sound;
      ] );
    ( "fault.fsim",
      [
        Alcotest.test_case "and exhaustive" `Quick test_fsim_and_gate_exhaustive_full_coverage;
        Alcotest.test_case "single pattern" `Quick test_fsim_single_pattern_partial;
        Alcotest.test_case "detection indices" `Quick test_fsim_detection_indices_monotone;
        Alcotest.test_case "curve monotone" `Quick test_fsim_coverage_curve_monotone;
        Alcotest.test_case "length to reach" `Quick test_fsim_length_to_reach;
        Alcotest.test_case "sequential counter" `Quick test_fsim_sequential_counter;
        Alcotest.test_case "rejects bad lane counts" `Quick test_fsim_rejects_bad_lanes;
        Alcotest.test_case "auto dispatch" `Quick test_fsim_auto_dispatch;
        Alcotest.test_case "input code" `Quick test_input_code;
        Alcotest.test_case "parallel-fault comb" `Quick test_parallel_fault_combinational_too;
        Alcotest.test_case "parallel-fault groups" `Quick test_parallel_fault_many_groups;
        q prop_serial_equals_parallel;
        q prop_parallel_fault_equals_serial;
        q prop_coverage_monotone_in_patterns;
      ] );
  ]
