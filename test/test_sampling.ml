(* Tests for lib/sampling: sampling strategies and the NLFCE metric. *)

module Prng = Mutsamp_util.Prng
module Operator = Mutsamp_mutation.Operator
module Mutant = Mutsamp_mutation.Mutant
module Generate = Mutsamp_mutation.Generate
module Strategy = Mutsamp_sampling.Strategy
module Nlfce = Mutsamp_sampling.Nlfce
module Fault = Mutsamp_fault.Fault
module Fsim = Mutsamp_fault.Fsim
module Parser = Mutsamp_hdl.Parser
module Check = Mutsamp_hdl.Check
module Netlist = Mutsamp_netlist.Netlist
module B = Netlist.Builder

(* Local stand-ins for the deprecated Fsim int-code conveniences. *)
let pattern_of_code nl code =
  Mutsamp_fault.Pattern.of_code
    ~inputs:(Array.length nl.Mutsamp_netlist.Netlist.input_nets)
    code

let patterns_of_codes nl codes = Array.map (pattern_of_code nl) codes


let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let parse src =
  Check.elaborate (Mutsamp_robust.Error.ok_exn (Parser.design_result src))

let alu = parse
    {|design alu is
  input a : unsigned(4);
  input b : unsigned(4);
  input op : bit;
  output y : unsigned(4);
  output f : bit;
  const K : unsigned(4) := 7;
begin
  f := a < b;
  if op = '1' then
    y := a + b;
  else
    y := a - b;
  end if;
  if a = K then
    f := '1';
  end if;
end design;|}

let mutants = Generate.all alu

(* ------------------------------------------------------------------ *)
(* Strategy                                                           *)
(* ------------------------------------------------------------------ *)

let test_sample_size () =
  check_int "10% of 770" 77 (Strategy.sample_size ~rate:0.1 770);
  check_int "rounds" 3 (Strategy.sample_size ~rate:0.1 25);
  check_int "at least one" 1 (Strategy.sample_size ~rate:0.01 5);
  check_int "empty population" 0 (Strategy.sample_size ~rate:0.5 0);
  (try
     ignore (Strategy.sample_size ~rate:0. 10);
     Alcotest.fail "zero rate"
   with Invalid_argument _ -> ());
  (try
     ignore (Strategy.sample_size ~rate:1.5 10);
     Alcotest.fail "rate > 1"
   with Invalid_argument _ -> ())

let test_random_sample_properties () =
  let prng = Prng.create 42 in
  let sample = Strategy.sample prng Strategy.Random_uniform mutants ~rate:0.1 in
  check_int "size" (Strategy.sample_size ~rate:0.1 (List.length mutants))
    (List.length sample);
  (* Subset, order preserved, distinct. *)
  let ids = List.map (fun (m : Mutant.t) -> m.id) sample in
  check_bool "sorted ids" true (List.sort Stdlib.compare ids = ids);
  List.iter
    (fun (m : Mutant.t) ->
      check_bool "member of population" true
        (List.exists (fun (m' : Mutant.t) -> m'.id = m.id) mutants))
    sample

let test_random_sample_deterministic () =
  let s1 = Strategy.sample (Prng.create 7) Strategy.Random_uniform mutants ~rate:0.1 in
  let s2 = Strategy.sample (Prng.create 7) Strategy.Random_uniform mutants ~rate:0.1 in
  check_bool "same" true (s1 = s2)

let weights_all_one =
  List.map (fun op -> (op, 1.)) Operator.all

let test_weighted_same_total_as_random () =
  (* The paper requires both strategies to extract the same count. *)
  let n_random =
    List.length (Strategy.sample (Prng.create 1) Strategy.Random_uniform mutants ~rate:0.1)
  in
  let n_weighted =
    List.length
      (Strategy.sample (Prng.create 1) (Strategy.Operator_weighted weights_all_one)
         mutants ~rate:0.1)
  in
  check_int "same count" n_random n_weighted

let test_weighted_respects_weights () =
  (* Weight only CR: the sample concentrates on CR mutants (up to the CR
     population size). *)
  let weights = [ (Operator.CR, 100.) ] in
  let sample =
    Strategy.sample (Prng.create 3) (Strategy.Operator_weighted weights) mutants
      ~rate:0.1
  in
  let total = Strategy.sample_size ~rate:0.1 (List.length mutants) in
  let cr_pop =
    List.length (List.filter (fun (m : Mutant.t) -> m.op = Operator.CR) mutants)
  in
  let cr_in_sample =
    List.length (List.filter (fun (m : Mutant.t) -> m.op = Operator.CR) sample)
  in
  check_int "sample full size" total (List.length sample);
  check_int "CR saturated or full" (min total cr_pop) cr_in_sample

let test_quotas_sum_and_caps () =
  let populations = Generate.count_by_operator mutants in
  let populations = List.filter (fun (_, n) -> n > 0) populations in
  let total = 20 in
  let q =
    Strategy.quotas (Strategy.Operator_weighted weights_all_one) populations ~total
  in
  check_int "sums to total" total (List.fold_left (fun acc (_, n) -> acc + n) 0 q);
  List.iter
    (fun (op, n) ->
      let pop = List.assoc op populations in
      check_bool "within population" true (n >= 0 && n <= pop))
    q

let test_quotas_zero_weights_degrade () =
  let populations = [ (Operator.LOR, 10); (Operator.VR, 30) ] in
  let q =
    Strategy.quotas
      (Strategy.Operator_weighted [ (Operator.LOR, 0.); (Operator.VR, 0.) ])
      populations ~total:4
  in
  check_int "total kept" 4 (List.fold_left (fun acc (_, n) -> acc + n) 0 q)

let prop_weighted_total_always_met =
  let gen = QCheck.Gen.(pair (int_range 0 100000) (int_range 1 10)) in
  QCheck.Test.make ~name:"weighted sampling meets its budget" ~count:100
    (QCheck.make gen) (fun (seed, rate10) ->
      let rate = float_of_int rate10 /. 10. in
      let prng = Prng.create seed in
      let weights =
        List.map (fun op -> (op, Prng.float prng *. 10.)) Operator.all
      in
      let sample =
        Strategy.sample prng (Strategy.Operator_weighted weights) mutants ~rate
      in
      List.length sample = Strategy.sample_size ~rate (List.length mutants))

(* ------------------------------------------------------------------ *)
(* Nlfce                                                              *)
(* ------------------------------------------------------------------ *)

let full_adder () =
  let b = B.create "fa" in
  let a = B.input b "a" and bb = B.input b "b" and cin = B.input b "cin" in
  let s = B.xor_ b (B.xor_ b a bb) cin in
  let cout = B.or_ b (B.and_ b a bb) (B.or_ b (B.and_ b a cin) (B.and_ b bb cin)) in
  B.output b "s" s;
  B.output b "cout" cout;
  B.finalize b

let test_nlfce_formula () =
  let nl = full_adder () in
  let faults = Fault.full_list nl in
  (* "Mutation" data: 4 strong patterns. Random baseline: a repetitive,
     weak 32-pattern sequence that needs longer to reach the same
     coverage. *)
  let mutation =
    Fsim.run nl ~faults
      ~sequence:(patterns_of_codes nl [| 0b011; 0b101; 0b110; 0b000 |])
  in
  let random_patterns = Array.init 32 (fun i -> [| 0b000; 0b111; 0b001; 0b011; 0b101; 0b110; 0b010; 0b100 |].(i mod 8)) in
  let random =
    Fsim.run nl ~faults
      ~sequence:(patterns_of_codes nl random_patterns)
  in
  let m = Nlfce.of_reports ~min_compare_length:1 ~mutation ~random () in
  Alcotest.(check (float 1e-9)) "product" (m.Nlfce.delta_fc_percent *. m.Nlfce.delta_l_percent) m.Nlfce.nlfce;
  Alcotest.(check (float 1e-9)) "mfc" (Fsim.coverage_percent mutation) m.Nlfce.mfc;
  Alcotest.(check (float 1e-9)) "rfc at L_m" (Fsim.coverage_at random 4) m.Nlfce.rfc_at_equal_length;
  check_int "L_m" 4 m.Nlfce.mutation_length

let test_nlfce_lr_reaches_mfc () =
  let nl = full_adder () in
  let faults = Fault.full_list nl in
  let mutation =
    Fsim.run nl ~faults
      ~sequence:(patterns_of_codes nl [| 0b011; 0b101; 0b110; 0b000 |])
  in
  let random = Fsim.run nl ~faults ~sequence:(patterns_of_codes nl (Array.init 32 (fun i -> i mod 8))) in
  let m = Nlfce.of_reports ~min_compare_length:1 ~mutation ~random () in
  if not m.Nlfce.random_saturated then begin
    check_bool "L_r reaches MFC" true
      (Fsim.coverage_at random m.Nlfce.random_length_for_mfc >= m.Nlfce.mfc -. 1e-9);
    if m.Nlfce.random_length_for_mfc > 0 then
      check_bool "L_r minimal" true
        (Fsim.coverage_at random (m.Nlfce.random_length_for_mfc - 1) < m.Nlfce.mfc -. 1e-9)
  end

let test_nlfce_identical_data_zero () =
  let nl = full_adder () in
  let faults = Fault.full_list nl in
  let patterns = patterns_of_codes nl (Array.init 8 (fun i -> i)) in
  let r = Fsim.run nl ~faults ~sequence:patterns in
  let m = Nlfce.of_reports ~mutation:r ~random:r () in
  Alcotest.(check (float 1e-9)) "dFC 0" 0. m.Nlfce.delta_fc_percent;
  check_bool "nlfce <= 0" true (m.Nlfce.nlfce <= 1e-9)

let test_nlfce_double_loss_is_negative () =
  let nl = full_adder () in
  let faults = Fault.full_list nl in
  (* "Mutation" data: 8 weak repeated patterns. Random: strong coverage
     quickly — both gains negative, NLFCE must be negative. *)
  let mutation = Fsim.run nl ~faults ~sequence:(patterns_of_codes nl (Array.make 8 0b000)) in
  let random = Fsim.run nl ~faults ~sequence:(patterns_of_codes nl (Array.init 32 (fun i -> i mod 8))) in
  let m = Nlfce.of_reports ~min_compare_length:1 ~mutation ~random () in
  check_bool "dFC negative" true (m.Nlfce.delta_fc_percent < 0.);
  check_bool "nlfce not positive" true (m.Nlfce.nlfce <= 0.)

let test_nlfce_min_compare_length_guards () =
  let nl = full_adder () in
  let faults = Fault.full_list nl in
  (* One strong vector vs a random set: with the floor, the comparison
     uses 16 random vectors, not 1. *)
  let mutation = Fsim.run nl ~faults ~sequence:(patterns_of_codes nl [| 0b011 |]) in
  let random = Fsim.run nl ~faults ~sequence:(patterns_of_codes nl (Array.init 32 (fun i -> i mod 8))) in
  let guarded = Nlfce.of_reports ~min_compare_length:16 ~mutation ~random () in
  let raw = Nlfce.of_reports ~min_compare_length:1 ~mutation ~random () in
  check_bool "guard lowers or keeps dFC" true
    (guarded.Nlfce.delta_fc_percent <= raw.Nlfce.delta_fc_percent +. 1e-9);
  Alcotest.(check (float 1e-9)) "guarded rfc is at 16"
    (Fsim.coverage_at random 16) guarded.Nlfce.rfc_at_equal_length

let test_nlfce_rejects_different_fault_lists () =
  let nl = full_adder () in
  let faults = Fault.full_list nl in
  let r1 = Fsim.run nl ~faults ~sequence:(patterns_of_codes nl [| 1 |]) in
  let r2 =
    Fsim.run nl
      ~faults:(List.filteri (fun i _ -> i < 3) faults)
      ~sequence:(patterns_of_codes nl [| 1 |])
  in
  (try
     ignore (Nlfce.of_reports ~mutation:r1 ~random:r2 ());
     Alcotest.fail "should reject"
   with Invalid_argument _ -> ())

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ( "sampling.strategy",
      [
        Alcotest.test_case "sample size" `Quick test_sample_size;
        Alcotest.test_case "random properties" `Quick test_random_sample_properties;
        Alcotest.test_case "random deterministic" `Quick test_random_sample_deterministic;
        Alcotest.test_case "same total both strategies" `Quick test_weighted_same_total_as_random;
        Alcotest.test_case "respects weights" `Quick test_weighted_respects_weights;
        Alcotest.test_case "quotas sum and caps" `Quick test_quotas_sum_and_caps;
        Alcotest.test_case "zero weights degrade" `Quick test_quotas_zero_weights_degrade;
        q prop_weighted_total_always_met;
      ] );
    ( "sampling.nlfce",
      [
        Alcotest.test_case "formula" `Quick test_nlfce_formula;
        Alcotest.test_case "L_r reaches MFC" `Quick test_nlfce_lr_reaches_mfc;
        Alcotest.test_case "identical data zero" `Quick test_nlfce_identical_data_zero;
        Alcotest.test_case "double loss negative" `Quick test_nlfce_double_loss_is_negative;
        Alcotest.test_case "compare-length guard" `Quick test_nlfce_min_compare_length_guards;
        Alcotest.test_case "rejects mismatched lists" `Quick test_nlfce_rejects_different_fault_lists;
      ] );
  ]
