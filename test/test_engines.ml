(* Cross-engine differential suite for the unified Fsim.run API: the
   event-driven and compiled backends must reproduce the packed and
   serial reference engines bit-for-bit — same detection flags AND the
   same first-detection indices — over random netlists, over the whole
   circuit registry, and at every shard fan-out. A final test pins the
   store contract: the engine choice never perturbs "fsimcone" keys,
   so a campaign cached under one backend replays warm under another. *)

module Prng = Mutsamp_util.Prng
module Packvec = Mutsamp_util.Packvec
module Netlist = Mutsamp_netlist.Netlist
module B = Netlist.Builder
module Fault = Mutsamp_fault.Fault
module Fsim = Mutsamp_fault.Fsim
module Registry = Mutsamp_circuits.Registry
module Pipeline = Mutsamp_core.Pipeline
module Prpg = Mutsamp_atpg.Prpg
module Ctx = Mutsamp_exec.Ctx
module Pool = Mutsamp_exec.Pool
module Store = Mutsamp_store.Store
module Metrics = Mutsamp_obs.Metrics
module Rerror = Mutsamp_robust.Error
module Collapse = Mutsamp_fault.Collapse

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Same shape as the generator in test_wide.ml: a few inputs, a pile of
   random gates, optional flip-flops, random outputs. *)
let random_netlist ~dffs seed =
  let prng = Prng.create seed in
  let b = B.create (Printf.sprintf "eng%d" seed) in
  let n_inputs = 2 + Prng.int prng 4 in
  let pool =
    ref (List.init n_inputs (fun k -> B.input b (Printf.sprintf "i%d" k)))
  in
  let qs =
    if not dffs then []
    else
      List.init
        (1 + Prng.int prng 2)
        (fun _ ->
          let q = B.dff b ~init:(Prng.bool prng) in
          pool := q :: !pool;
          q)
  in
  let pick () = Prng.pick_list prng !pool in
  for _ = 1 to 5 + Prng.int prng 15 do
    let x = pick () and y = pick () in
    let g =
      match Prng.int prng 7 with
      | 0 -> B.and_ b x y
      | 1 -> B.or_ b x y
      | 2 -> B.xor_ b x y
      | 3 -> B.nand_ b x y
      | 4 -> B.nor_ b x y
      | 5 -> B.xnor_ b x y
      | _ -> B.not_ b x
    in
    pool := g :: !pool
  done;
  List.iter (fun q -> B.connect_dff b q ~d:(pick ())) qs;
  for k = 0 to Prng.int prng 3 do
    B.output b (Printf.sprintf "o%d" k) (pick ())
  done;
  B.finalize b

let random_sequence nl ~length seed =
  let prng = Prng.create seed in
  let n_in = Array.length nl.Netlist.input_nets in
  Array.init length (fun _ -> Packvec.random prng n_in)

let same_report (a : Fsim.report) (b : Fsim.report) =
  a.Fsim.total = b.Fsim.total
  && a.Fsim.detected = b.Fsim.detected
  && a.Fsim.patterns_applied = b.Fsim.patterns_applied
  && Array.for_all2
       (fun (da : Fsim.detection) (db : Fsim.detection) ->
         da.Fsim.fault = db.Fsim.fault
         && da.Fsim.detected_at = db.Fsim.detected_at)
       a.Fsim.detections b.Fsim.detections

let engines = [ Fsim.Packed; Fsim.Event; Fsim.Compiled ]

(* ------------------------------------------------------------------ *)
(* Random-netlist differential properties                             *)
(* ------------------------------------------------------------------ *)

let prop_engines_agree ~dffs ~name =
  QCheck.Test.make ~name ~count:80
    (QCheck.make QCheck.Gen.(int_range 0 1000000))
    (fun seed ->
      let nl = random_netlist ~dffs seed in
      let faults = Fault.full_list nl in
      let len = if dffs then 6 + (seed mod 12) else 20 + (seed mod 60) in
      let sequence = random_sequence nl ~length:len seed in
      let reference = Fsim.run ~engine:Fsim.Serial nl ~faults ~sequence in
      List.for_all
        (fun engine ->
          same_report reference (Fsim.run ~engine nl ~faults ~sequence))
        engines)

let prop_comb_engines_agree =
  prop_engines_agree ~dffs:false
    ~name:"packed = event = compiled = serial (combinational)"

let prop_seq_engines_agree =
  prop_engines_agree ~dffs:true
    ~name:"packed = event = compiled = serial (sequential)"

(* ------------------------------------------------------------------ *)
(* Registry circuits at every shard fan-out                           *)
(* ------------------------------------------------------------------ *)

(* Detection reports must not depend on the engine OR on how the fault
   list is sharded across domains — the merge of contiguous shards is
   bit-identical because per-fault first detection is independent of
   grouping. Runs the whole registry: comb ISCAS nets, seq ITC bench
   machines, and the >62-input wide128 regression. *)
let test_registry_all_engines_all_jobs () =
  List.iter
    (fun (e : Registry.entry) ->
      let p = Pipeline.prepare (e.Registry.design ()) in
      let nl = p.Pipeline.netlist in
      let faults = p.Pipeline.faults in
      let bits = Array.length nl.Netlist.input_nets in
      let length = if Netlist.num_dffs nl = 0 then 24 else 12 in
      let sequence = Prpg.uniform_sequence (Prng.create 7) ~bits ~length in
      let reference = Fsim.run ~engine:Fsim.Serial nl ~faults ~sequence in
      List.iter
        (fun jobs ->
          let with_ctx f =
            if jobs = 1 then f Ctx.default
            else begin
              let pool = Pool.create ~domains:jobs in
              Fun.protect
                ~finally:(fun () -> Pool.shutdown pool)
                (fun () -> f (Ctx.with_pool pool))
            end
          in
          with_ctx @@ fun ctx ->
          List.iter
            (fun engine ->
              let r = Fsim.run ~engine ~ctx nl ~faults ~sequence in
              check_bool
                (Printf.sprintf "%s: %s at jobs %d differs from serial"
                   e.Registry.name
                   (Ctx.engine_to_string engine)
                   jobs)
                true (same_report reference r))
            engines)
        [ 1; 2; 4 ])
    Registry.all

(* ------------------------------------------------------------------ *)
(* Store keys are engine-independent                                  *)
(* ------------------------------------------------------------------ *)

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let with_store f =
  let dir = Filename.temp_file "mutsamp_engines" "" in
  Sys.remove dir;
  Fun.protect ~finally:(fun () -> rm_rf dir)
  @@ fun () ->
  match Store.open_dir dir with
  | Ok s -> f s
  | Error e -> Alcotest.failf "open_dir failed: %s" (Rerror.to_string e)

let store_count name =
  match List.assoc_opt name (Store.counters ()) with
  | Some n -> n
  | None -> 0

(* A campaign cached under one engine must replay warm under another:
   "fsimcone" keys hash cones, fault sites and the sequence — never the
   backend — and the cached payloads are bit-identical by the
   differential properties above. Cold-run with packed, warm-run with
   event and compiled: every group hits, nothing simulates, nothing is
   re-stored. *)
let test_warm_replay_across_engines () =
  with_store @@ fun s ->
  let p =
    match Registry.find "c432" with
    | Some e -> Pipeline.prepare (e.Registry.design ())
    | None -> Alcotest.fail "c432 missing"
  in
  let nl = p.Pipeline.netlist in
  let faults = (Collapse.run nl).Collapse.representatives in
  let bits = Array.length nl.Netlist.input_nets in
  let patterns = Prpg.uniform_sequence (Prng.create 19) ~bits ~length:16 in
  Store.reset_counters ();
  let ctx_of engine = Ctx.make ~store:s ~engine () in
  let cold =
    Pipeline.fault_simulate_patterns ~ctx:(ctx_of Ctx.Packed) nl ~faults
      ~patterns
  in
  check_bool "cold run fills the store" true (store_count "puts" >= 1);
  List.iter
    (fun engine ->
      Store.reset_counters ();
      Metrics.set_enabled true;
      Metrics.reset ();
      let warm =
        Pipeline.fault_simulate_patterns ~ctx:(ctx_of engine) nl ~faults
          ~patterns
      in
      let snap = Metrics.snapshot () in
      Metrics.reset ();
      Metrics.set_enabled false;
      check_bool
        (Printf.sprintf "warm %s replay bit-identical"
           (Ctx.engine_to_string engine))
        true (warm = cold);
      check_bool "warm run hits the store" true (store_count "hits" >= 1);
      check_int "warm run stores nothing" 0 (store_count "puts");
      (* No fsim.* counter moves at all: the engine never ran. *)
      List.iter
        (fun (name, v) ->
          check_bool
            (Printf.sprintf "unexpected %s=%d on warm %s run" name v
               (Ctx.engine_to_string engine))
            false
            (String.length name >= 5 && String.sub name 0 5 = "fsim."))
        snap.Metrics.counters)
    [ Ctx.Event; Ctx.Compiled; Ctx.Auto ]

let suite =
  [
    ( "engines.differential",
      [
        QCheck_alcotest.to_alcotest prop_comb_engines_agree;
        QCheck_alcotest.to_alcotest prop_seq_engines_agree;
      ] );
    ( "engines.registry",
      [
        Alcotest.test_case "whole registry, all engines, jobs 1/2/4" `Slow
          test_registry_all_engines_all_jobs;
      ] );
    ( "engines.store",
      [
        Alcotest.test_case "warm replay across engines" `Quick
          test_warm_replay_across_engines;
      ] );
  ]
