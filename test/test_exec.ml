(* Tests for lib/exec: the domain pool itself, and differential checks
   that every sharded stage is bit-identical to its sequential path at
   any jobs setting — including under budget exhaustion and injected
   worker faults. *)

module Pool = Mutsamp_exec.Pool
module Ctx = Mutsamp_exec.Ctx
module Registry = Mutsamp_circuits.Registry
module Pipeline = Mutsamp_core.Pipeline
module Experiments = Mutsamp_core.Experiments
module Config = Mutsamp_core.Config
module Kill = Mutsamp_mutation.Kill
module Operator = Mutsamp_mutation.Operator
module Stimuli = Mutsamp_hdl.Stimuli
module Fsim = Mutsamp_fault.Fsim
module Prpg = Mutsamp_atpg.Prpg
module Prng = Mutsamp_util.Prng
module Budget = Mutsamp_robust.Budget
module Chaos = Mutsamp_robust.Chaos
module Degrade = Mutsamp_robust.Degrade

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Run [f ctx] under a fresh pool of [jobs] domains, shutting the pool
   down whatever happens. *)
let with_jobs jobs f =
  let pool = Pool.create ~domains:jobs in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () -> f (Ctx.with_pool pool))

(* Chaos armings, the degradation record and the ambient budget are
   process-global; leave nothing behind for the rest of the suite. *)
let clean f () =
  Chaos.disarm_all ();
  Chaos.init ~seed:2005 ();
  Degrade.reset ();
  Budget.set_ambient Budget.unlimited;
  Fun.protect
    ~finally:(fun () ->
      Chaos.disarm_all ();
      Degrade.reset ();
      Budget.set_ambient Budget.unlimited)
    f

let pipeline name =
  match Registry.find name with
  | Some e -> Pipeline.prepare (e.Registry.design ())
  | None -> Alcotest.failf "circuit %s not in registry" name

(* ------------------------------------------------------------------ *)
(* Pool                                                               *)
(* ------------------------------------------------------------------ *)

let test_pool_map_in_index_order () =
  with_jobs 3 (fun ctx ->
      let pool = Option.get ctx.Ctx.pool in
      let got = Pool.run pool 100 ~f:(fun i -> i * i) in
      Alcotest.(check (array int)) "squares" (Array.init 100 (fun i -> i * i)) got;
      check_int "empty batch" 0 (Array.length (Pool.run pool 0 ~f:(fun i -> i)));
      (* Fewer tasks than domains: still exactly one evaluation each. *)
      let hits = Array.make 2 0 in
      ignore (Pool.run pool 2 ~f:(fun i -> hits.(i) <- hits.(i) + 1));
      Alcotest.(check (array int)) "single evaluation" [| 1; 1 |] hits)

let test_pool_lowest_index_exception_wins () =
  with_jobs 4 (fun ctx ->
      let pool = Option.get ctx.Ctx.pool in
      (match
         Pool.run pool 50 ~f:(fun i ->
             if i mod 7 = 3 then failwith (string_of_int i) else i)
       with
      | _ -> Alcotest.fail "should raise"
      | exception Failure msg ->
        (* 3 is the lowest failing index — the same exception the
           sequential left-to-right loop would have surfaced first. *)
        check_int "lowest failing index" 3 (int_of_string msg));
      (* The pool survives a failed batch. *)
      let again = Pool.run pool 5 ~f:(fun i -> i + 1) in
      Alcotest.(check (array int)) "usable after failure" [| 1; 2; 3; 4; 5 |] again)

let test_pool_nested_runs_inline () =
  with_jobs 3 (fun ctx ->
      let pool = Option.get ctx.Ctx.pool in
      check_bool "not in worker outside" false (Pool.in_worker ());
      let got =
        Pool.run pool 4 ~f:(fun i ->
            check_bool "in worker inside" true (Pool.in_worker ());
            (* A nested submission must execute inline, not deadlock. *)
            Array.fold_left ( + ) 0 (Pool.run pool 3 ~f:(fun j -> (10 * i) + j)))
      in
      Alcotest.(check (array int)) "nested sums"
        (Array.init 4 (fun i -> (30 * i) + 3)) got;
      (* Ctx reports fan-out 1 inside a worker, so sharded entry points
         nested under a pool take their sequential path. *)
      ignore
        (Pool.run pool 2 ~f:(fun _ -> check_int "nested jobs" 1 (Ctx.jobs ctx))))

let test_pool_shutdown_idempotent () =
  let pool = Pool.create ~domains:4 in
  check_int "size" 4 (Pool.size pool);
  Pool.shutdown pool;
  Pool.shutdown pool;
  let got = Pool.run pool 3 ~f:(fun i -> -i) in
  Alcotest.(check (array int)) "inline after shutdown" [| 0; -1; -2 |] got

let test_chunks_invariants () =
  List.iter
    (fun jobs ->
      List.iter
        (fun n ->
          let ch = Pool.chunks ~jobs ~n in
          if n <= 0 then check_int "empty" 0 (Array.length ch)
          else begin
            check_bool "at most jobs chunks" true (Array.length ch <= max 1 jobs);
            let covered = ref 0 in
            Array.iteri
              (fun i (lo, len) ->
                check_bool "non-empty" true (len > 0);
                check_int "contiguous" !covered lo;
                covered := !covered + len;
                ignore i)
              ch;
            check_int "covers range" n !covered;
            let sizes = Array.map snd ch in
            let mn = Array.fold_left min max_int sizes in
            let mx = Array.fold_left max 0 sizes in
            check_bool "balanced" true (mx - mn <= 1)
          end)
        [ 0; 1; 2; 3; 7; 64; 1000 ])
    [ 1; 2; 4; 7; 16 ]

(* ------------------------------------------------------------------ *)
(* Differential: fault simulation                                     *)
(* ------------------------------------------------------------------ *)

let fsim_report p jobs =
  let nl = p.Pipeline.netlist in
  let bits = Array.length nl.Mutsamp_netlist.Netlist.input_nets in
  let patterns = Prpg.uniform_sequence (Prng.create 11) ~bits ~length:128 in
  if jobs = 1 then Pipeline.fault_simulate p patterns
  else with_jobs jobs (fun ctx -> Pipeline.fault_simulate ~ctx p patterns)

let test_fsim_differential () =
  List.iter
    (fun name ->
      let p = pipeline name in
      let baseline = fsim_report p 1 in
      check_bool (name ^ " detects something") true (baseline.Fsim.detected > 0);
      List.iter
        (fun jobs ->
          check_bool
            (Printf.sprintf "%s jobs %d ≡ sequential" name jobs)
            true
            (fsim_report p jobs = baseline))
        [ 2; 4; 7 ])
    [ "c17"; "c432"; "b01"; "wide128" ]

(* ------------------------------------------------------------------ *)
(* Differential: mutant execution                                     *)
(* ------------------------------------------------------------------ *)

let test_kill_differential () =
  let p = pipeline "c17" in
  let runner = Kill.make p.Pipeline.design p.Pipeline.mutants in
  let prng = Prng.create 23 in
  let sequences =
    List.init 8 (fun _ -> Stimuli.random_sequence prng p.Pipeline.design 4)
  in
  let seq = List.hd sequences in
  let base_killed = Kill.killed_set runner sequences in
  let base_kills = Kill.kills runner seq in
  let base_kills_at = Kill.kills_at runner seq in
  List.iter
    (fun jobs ->
      with_jobs jobs (fun ctx ->
          check_bool "killed_set identical" true
            (Kill.killed_set runner ~ctx sequences = base_killed);
          check_bool "kills identical" true (Kill.kills runner ~ctx seq = base_kills);
          check_bool "kills_at identical" true
            (Kill.kills_at runner ~ctx seq = base_kills_at)))
    [ 2; 4; 7 ]

(* ------------------------------------------------------------------ *)
(* Differential: campaign cells and equivalence classification        *)
(* ------------------------------------------------------------------ *)

let test_table1_differential () =
  let p = pipeline "c17" in
  let base =
    Experiments.operator_efficiency ~config:Config.quick ~operators:Operator.all p
      ~name:"c17"
  in
  with_jobs 3 (fun ctx ->
      let sharded =
        Experiments.operator_efficiency ~config:Config.quick ~operators:Operator.all
          ~ctx p ~name:"c17"
      in
      check_bool "table1 rows identical" true (sharded = base))

let test_classify_equivalents_differential () =
  let p = pipeline "c17" in
  let base = Pipeline.classify_equivalents ~screen:64 ~seed:3 p in
  List.iter
    (fun jobs ->
      with_jobs jobs (fun ctx ->
          check_bool
            (Printf.sprintf "equivalents jobs %d ≡ sequential" jobs)
            true
            (Pipeline.classify_equivalents ~screen:64 ~ctx ~seed:3 p = base)))
    [ 2; 4 ]

(* ------------------------------------------------------------------ *)
(* QCheck: randomized jobs/workload differentials                     *)
(* ------------------------------------------------------------------ *)

let c17_pipeline = lazy (pipeline "c17")
let b01_pipeline = lazy (pipeline "b01")

(* Any (jobs, pattern-count) pair must reproduce the sequential report
   exactly — fault order, detection indices, everything. *)
let prop_fsim_random_jobs_identical =
  QCheck.Test.make ~name:"sharded fsim = sequential, random jobs/workload"
    ~count:25
    (QCheck.make QCheck.Gen.(int_range 0 1000000))
    (fun seed ->
      let p =
        Lazy.force (if seed mod 2 = 0 then c17_pipeline else b01_pipeline)
      in
      let jobs = 2 + (seed mod 6) in
      let nl = p.Pipeline.netlist in
      let bits = Array.length nl.Mutsamp_netlist.Netlist.input_nets in
      let length = 16 + (seed mod 120) in
      let mk () = Prpg.uniform_sequence (Prng.create seed) ~bits ~length in
      let baseline = Pipeline.fault_simulate p (mk ()) in
      with_jobs jobs (fun ctx -> Pipeline.fault_simulate ~ctx p (mk ()) = baseline))

let prop_chunks_partition =
  QCheck.Test.make ~name:"chunks partition any range" ~count:200
    (QCheck.make QCheck.Gen.(pair (int_range 1 32) (int_range 0 5000)))
    (fun (jobs, n) ->
      let ch = Pool.chunks ~jobs ~n in
      if n <= 0 then Array.length ch = 0
      else
        Array.length ch <= jobs
        && Array.for_all (fun (_, len) -> len > 0) ch
        && fst ch.(0) = 0
        && Array.fold_left (fun next (lo, len) -> if lo = next then lo + len else -1)
             0 ch
           = n
        &&
        let sizes = Array.map snd ch in
        Array.fold_left max 0 sizes - Array.fold_left min max_int sizes <= 1)

(* ------------------------------------------------------------------ *)
(* Determinism under budget exhaustion and injected worker faults     *)
(* ------------------------------------------------------------------ *)

let test_budget_exhaustion_deterministic () =
  let p = pipeline "c432" in
  let full = fsim_report p 1 in
  let cut jobs =
    (* A fresh budget each run: quotas deplete in place. *)
    Degrade.reset ();
    with_jobs jobs (fun ctx ->
        let ctx = { ctx with Ctx.budget = Some (Budget.create ~fsim_pairs:5000 ()) } in
        let nl = p.Pipeline.netlist in
        let bits = Array.length nl.Mutsamp_netlist.Netlist.input_nets in
        let patterns = Prpg.uniform_sequence (Prng.create 11) ~bits ~length:128 in
        let r = Pipeline.fault_simulate ~ctx p patterns in
        check_bool "cut is on record" true
          (List.mem "fsim" (Degrade.degraded_stages ()));
        r)
  in
  let first = cut 4 in
  check_bool "partial under budget" true (first.Fsim.detected < full.Fsim.detected);
  check_bool "same run twice" true (cut 4 = first)

let test_chaos_in_worker_deterministic () =
  let p = pipeline "c432" in
  let run jobs =
    Degrade.reset ();
    Chaos.disarm_all ();
    Chaos.init ~seed:2005 ();
    Chaos.arm Chaos.Fsim_run Chaos.Timeout;
    let nl = p.Pipeline.netlist in
    let bits = Array.length nl.Mutsamp_netlist.Netlist.input_nets in
    let patterns = Prpg.uniform_sequence (Prng.create 11) ~bits ~length:128 in
    let r =
      if jobs = 1 then Pipeline.fault_simulate p patterns
      else with_jobs jobs (fun ctx -> Pipeline.fault_simulate ~ctx p patterns)
    in
    check_bool "degradation recorded" true (Degrade.any ());
    r
  in
  let seq = run 1 in
  (* The injected timeout fires in every shard, so nothing is detected
     anywhere — and the report is identical to the sequential one. *)
  check_int "nothing detected" 0 seq.Fsim.detected;
  check_bool "jobs 4 identical under chaos" true (run 4 = seq);
  check_bool "jobs 4 repeatable under chaos" true (run 4 = seq)

let suite =
  [
    ( "exec.pool",
      [
        Alcotest.test_case "map in index order" `Quick test_pool_map_in_index_order;
        Alcotest.test_case "lowest-index exception wins" `Quick
          test_pool_lowest_index_exception_wins;
        Alcotest.test_case "nested runs inline" `Quick test_pool_nested_runs_inline;
        Alcotest.test_case "shutdown idempotent" `Quick test_pool_shutdown_idempotent;
        Alcotest.test_case "chunk invariants" `Quick test_chunks_invariants;
      ] );
    ( "exec.differential",
      [
        Alcotest.test_case "fault simulation (c17/c432/b01/wide128)" `Quick
          test_fsim_differential;
        Alcotest.test_case "mutant execution (c17)" `Quick test_kill_differential;
        Alcotest.test_case "table1 campaign cells (c17)" `Quick
          test_table1_differential;
        Alcotest.test_case "equivalence classification (c17)" `Quick
          test_classify_equivalents_differential;
        QCheck_alcotest.to_alcotest prop_fsim_random_jobs_identical;
        QCheck_alcotest.to_alcotest prop_chunks_partition;
      ] );
    ( "exec.robust",
      [
        Alcotest.test_case "budget exhaustion deterministic" `Quick
          (clean test_budget_exhaustion_deterministic);
        Alcotest.test_case "chaos in workers deterministic" `Quick
          (clean test_chaos_in_worker_deterministic);
      ] );
  ]
