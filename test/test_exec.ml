(* Tests for lib/exec: the domain pool itself, and differential checks
   that every sharded stage is bit-identical to its sequential path at
   any jobs setting — including under budget exhaustion and injected
   worker faults. *)

module Pool = Mutsamp_exec.Pool
module Ctx = Mutsamp_exec.Ctx
module Registry = Mutsamp_circuits.Registry
module Pipeline = Mutsamp_core.Pipeline
module Experiments = Mutsamp_core.Experiments
module Config = Mutsamp_core.Config
module Kill = Mutsamp_mutation.Kill
module Operator = Mutsamp_mutation.Operator
module Stimuli = Mutsamp_hdl.Stimuli
module Fsim = Mutsamp_fault.Fsim
module Prpg = Mutsamp_atpg.Prpg
module Prng = Mutsamp_util.Prng
module Budget = Mutsamp_robust.Budget
module Chaos = Mutsamp_robust.Chaos
module Degrade = Mutsamp_robust.Degrade
module Cliargs = Mutsamp_exec.Cliargs
module Trace = Mutsamp_obs.Trace
module Metrics = Mutsamp_obs.Metrics
module Profile = Mutsamp_obs.Profile

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Run [f ctx] under a fresh pool of [jobs] domains, shutting the pool
   down whatever happens. *)
let with_jobs jobs f =
  let pool = Pool.create ~domains:jobs in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () -> f (Ctx.with_pool pool))

(* Chaos armings, the degradation record and the ambient budget are
   process-global; leave nothing behind for the rest of the suite. *)
let clean f () =
  Chaos.disarm_all ();
  Chaos.init ~seed:2005 ();
  Degrade.reset ();
  Budget.set_ambient Budget.unlimited;
  Fun.protect
    ~finally:(fun () ->
      Chaos.disarm_all ();
      Degrade.reset ();
      Budget.set_ambient Budget.unlimited)
    f

let pipeline name =
  match Registry.find name with
  | Some e -> Pipeline.prepare (e.Registry.design ())
  | None -> Alcotest.failf "circuit %s not in registry" name

(* ------------------------------------------------------------------ *)
(* Pool                                                               *)
(* ------------------------------------------------------------------ *)

let test_pool_map_in_index_order () =
  with_jobs 3 (fun ctx ->
      let pool = Option.get ctx.Ctx.pool in
      let got = Pool.run pool 100 ~f:(fun i -> i * i) in
      Alcotest.(check (array int)) "squares" (Array.init 100 (fun i -> i * i)) got;
      check_int "empty batch" 0 (Array.length (Pool.run pool 0 ~f:(fun i -> i)));
      (* Fewer tasks than domains: still exactly one evaluation each. *)
      let hits = Array.make 2 0 in
      ignore (Pool.run pool 2 ~f:(fun i -> hits.(i) <- hits.(i) + 1));
      Alcotest.(check (array int)) "single evaluation" [| 1; 1 |] hits)

let test_pool_lowest_index_exception_wins () =
  with_jobs 4 (fun ctx ->
      let pool = Option.get ctx.Ctx.pool in
      (match
         Pool.run pool 50 ~f:(fun i ->
             if i mod 7 = 3 then failwith (string_of_int i) else i)
       with
      | _ -> Alcotest.fail "should raise"
      | exception Failure msg ->
        (* 3 is the lowest failing index — the same exception the
           sequential left-to-right loop would have surfaced first. *)
        check_int "lowest failing index" 3 (int_of_string msg));
      (* The pool survives a failed batch. *)
      let again = Pool.run pool 5 ~f:(fun i -> i + 1) in
      Alcotest.(check (array int)) "usable after failure" [| 1; 2; 3; 4; 5 |] again)

let test_pool_nested_runs_inline () =
  with_jobs 3 (fun ctx ->
      let pool = Option.get ctx.Ctx.pool in
      check_bool "not in worker outside" false (Pool.in_worker ());
      let got =
        Pool.run pool 4 ~f:(fun i ->
            check_bool "in worker inside" true (Pool.in_worker ());
            (* A nested submission must execute inline, not deadlock. *)
            Array.fold_left ( + ) 0 (Pool.run pool 3 ~f:(fun j -> (10 * i) + j)))
      in
      Alcotest.(check (array int)) "nested sums"
        (Array.init 4 (fun i -> (30 * i) + 3)) got;
      (* Ctx reports fan-out 1 inside a worker, so sharded entry points
         nested under a pool take their sequential path. *)
      ignore
        (Pool.run pool 2 ~f:(fun _ -> check_int "nested jobs" 1 (Ctx.jobs ctx))))

let test_pool_shutdown_idempotent () =
  let pool = Pool.create ~domains:4 in
  check_int "size" 4 (Pool.size pool);
  Pool.shutdown pool;
  Pool.shutdown pool;
  let got = Pool.run pool 3 ~f:(fun i -> -i) in
  Alcotest.(check (array int)) "inline after shutdown" [| 0; -1; -2 |] got

let test_chunks_invariants () =
  List.iter
    (fun jobs ->
      List.iter
        (fun n ->
          let ch = Pool.chunks ~jobs ~n in
          if n <= 0 then check_int "empty" 0 (Array.length ch)
          else begin
            check_bool "at most jobs chunks" true (Array.length ch <= max 1 jobs);
            let covered = ref 0 in
            Array.iteri
              (fun i (lo, len) ->
                check_bool "non-empty" true (len > 0);
                check_int "contiguous" !covered lo;
                covered := !covered + len;
                ignore i)
              ch;
            check_int "covers range" n !covered;
            let sizes = Array.map snd ch in
            let mn = Array.fold_left min max_int sizes in
            let mx = Array.fold_left max 0 sizes in
            check_bool "balanced" true (mx - mn <= 1)
          end)
        [ 0; 1; 2; 3; 7; 64; 1000 ])
    [ 1; 2; 4; 7; 16 ]

(* ------------------------------------------------------------------ *)
(* Differential: fault simulation                                     *)
(* ------------------------------------------------------------------ *)

let fsim_report p jobs =
  let nl = p.Pipeline.netlist in
  let bits = Array.length nl.Mutsamp_netlist.Netlist.input_nets in
  let patterns = Prpg.uniform_sequence (Prng.create 11) ~bits ~length:128 in
  if jobs = 1 then Pipeline.fault_simulate p patterns
  else with_jobs jobs (fun ctx -> Pipeline.fault_simulate ~ctx p patterns)

let test_fsim_differential () =
  List.iter
    (fun name ->
      let p = pipeline name in
      let baseline = fsim_report p 1 in
      check_bool (name ^ " detects something") true (baseline.Fsim.detected > 0);
      List.iter
        (fun jobs ->
          check_bool
            (Printf.sprintf "%s jobs %d ≡ sequential" name jobs)
            true
            (fsim_report p jobs = baseline))
        [ 2; 4; 7 ])
    [ "c17"; "c432"; "b01"; "wide128" ]

(* ------------------------------------------------------------------ *)
(* Differential: mutant execution                                     *)
(* ------------------------------------------------------------------ *)

let test_kill_differential () =
  let p = pipeline "c17" in
  let runner = Kill.make p.Pipeline.design p.Pipeline.mutants in
  let prng = Prng.create 23 in
  let sequences =
    List.init 8 (fun _ -> Stimuli.random_sequence prng p.Pipeline.design 4)
  in
  let seq = List.hd sequences in
  let base_killed = Kill.killed_set runner sequences in
  let base_kills = Kill.kills runner seq in
  let base_kills_at = Kill.kills_at runner seq in
  List.iter
    (fun jobs ->
      with_jobs jobs (fun ctx ->
          check_bool "killed_set identical" true
            (Kill.killed_set runner ~ctx sequences = base_killed);
          check_bool "kills identical" true (Kill.kills runner ~ctx seq = base_kills);
          check_bool "kills_at identical" true
            (Kill.kills_at runner ~ctx seq = base_kills_at)))
    [ 2; 4; 7 ]

(* ------------------------------------------------------------------ *)
(* Differential: campaign cells and equivalence classification        *)
(* ------------------------------------------------------------------ *)

let test_table1_differential () =
  let p = pipeline "c17" in
  let base =
    Experiments.operator_efficiency ~config:Config.quick ~operators:Operator.all p
      ~name:"c17"
  in
  with_jobs 3 (fun ctx ->
      let sharded =
        Experiments.operator_efficiency ~config:Config.quick ~operators:Operator.all
          ~ctx p ~name:"c17"
      in
      check_bool "table1 rows identical" true (sharded = base))

let test_classify_equivalents_differential () =
  let p = pipeline "c17" in
  let base = Pipeline.classify_equivalents ~screen:64 ~seed:3 p in
  List.iter
    (fun jobs ->
      with_jobs jobs (fun ctx ->
          check_bool
            (Printf.sprintf "equivalents jobs %d ≡ sequential" jobs)
            true
            (Pipeline.classify_equivalents ~screen:64 ~ctx ~seed:3 p = base)))
    [ 2; 4 ]

(* ------------------------------------------------------------------ *)
(* QCheck: randomized jobs/workload differentials                     *)
(* ------------------------------------------------------------------ *)

let c17_pipeline = lazy (pipeline "c17")
let b01_pipeline = lazy (pipeline "b01")

(* Any (jobs, pattern-count) pair must reproduce the sequential report
   exactly — fault order, detection indices, everything. *)
let prop_fsim_random_jobs_identical =
  QCheck.Test.make ~name:"sharded fsim = sequential, random jobs/workload"
    ~count:25
    (QCheck.make QCheck.Gen.(int_range 0 1000000))
    (fun seed ->
      let p =
        Lazy.force (if seed mod 2 = 0 then c17_pipeline else b01_pipeline)
      in
      let jobs = 2 + (seed mod 6) in
      let nl = p.Pipeline.netlist in
      let bits = Array.length nl.Mutsamp_netlist.Netlist.input_nets in
      let length = 16 + (seed mod 120) in
      let mk () = Prpg.uniform_sequence (Prng.create seed) ~bits ~length in
      let baseline = Pipeline.fault_simulate p (mk ()) in
      with_jobs jobs (fun ctx -> Pipeline.fault_simulate ~ctx p (mk ()) = baseline))

let prop_chunks_partition =
  QCheck.Test.make ~name:"chunks partition any range" ~count:200
    (QCheck.make QCheck.Gen.(pair (int_range 1 32) (int_range 0 5000)))
    (fun (jobs, n) ->
      let ch = Pool.chunks ~jobs ~n in
      if n <= 0 then Array.length ch = 0
      else
        Array.length ch <= jobs
        && Array.for_all (fun (_, len) -> len > 0) ch
        && fst ch.(0) = 0
        && Array.fold_left (fun next (lo, len) -> if lo = next then lo + len else -1)
             0 ch
           = n
        &&
        let sizes = Array.map snd ch in
        Array.fold_left max 0 sizes - Array.fold_left min max_int sizes <= 1)

(* ------------------------------------------------------------------ *)
(* Determinism under budget exhaustion and injected worker faults     *)
(* ------------------------------------------------------------------ *)

let test_budget_exhaustion_deterministic () =
  let p = pipeline "c432" in
  let full = fsim_report p 1 in
  let cut jobs =
    (* A fresh budget each run: quotas deplete in place. *)
    Degrade.reset ();
    with_jobs jobs (fun ctx ->
        let ctx = { ctx with Ctx.budget = Some (Budget.create ~fsim_pairs:5000 ()) } in
        let nl = p.Pipeline.netlist in
        let bits = Array.length nl.Mutsamp_netlist.Netlist.input_nets in
        let patterns = Prpg.uniform_sequence (Prng.create 11) ~bits ~length:128 in
        let r = Pipeline.fault_simulate ~ctx p patterns in
        check_bool "cut is on record" true
          (List.mem "fsim" (Degrade.degraded_stages ()));
        r)
  in
  let first = cut 4 in
  check_bool "partial under budget" true (first.Fsim.detected < full.Fsim.detected);
  check_bool "same run twice" true (cut 4 = first)

let test_chaos_in_worker_deterministic () =
  let p = pipeline "c432" in
  let run jobs =
    Degrade.reset ();
    Chaos.disarm_all ();
    Chaos.init ~seed:2005 ();
    Chaos.arm Chaos.Fsim_run Chaos.Timeout;
    let nl = p.Pipeline.netlist in
    let bits = Array.length nl.Mutsamp_netlist.Netlist.input_nets in
    let patterns = Prpg.uniform_sequence (Prng.create 11) ~bits ~length:128 in
    let r =
      if jobs = 1 then Pipeline.fault_simulate p patterns
      else with_jobs jobs (fun ctx -> Pipeline.fault_simulate ~ctx p patterns)
    in
    check_bool "degradation recorded" true (Degrade.any ());
    r
  in
  let seq = run 1 in
  (* The injected timeout fires in every shard, so nothing is detected
     anywhere — and the report is identical to the sequential one. *)
  check_int "nothing detected" 0 seq.Fsim.detected;
  check_bool "jobs 4 identical under chaos" true (run 4 = seq);
  check_bool "jobs 4 repeatable under chaos" true (run 4 = seq)

(* ------------------------------------------------------------------ *)
(* Shared argv parsing (bench/main.ml and ad-hoc tools)               *)
(* ------------------------------------------------------------------ *)

let test_cliargs_jobs_spellings () =
  let argv l = Array.of_list ("bench" :: l) in
  check_int "--jobs N" 4 (Cliargs.jobs (argv [ "--jobs"; "4" ]));
  check_int "--jobs=N" 3 (Cliargs.jobs (argv [ "--jobs=3" ]));
  check_int "-j N" 2 (Cliargs.jobs (argv [ "-j"; "2" ]));
  check_int "-jN" 6 (Cliargs.jobs (argv [ "-j6" ]));
  check_int "absent -> default" 1 (Cliargs.jobs (argv [ "--quick" ]));
  check_int "malformed -> default" 1 (Cliargs.jobs (argv [ "--jobs"; "many" ]));
  check_int "last occurrence wins" 5 (Cliargs.jobs (argv [ "--jobs"; "2"; "-j5" ]));
  check_int "other flags interleaved" 7
    (Cliargs.jobs (argv [ "--quick"; "-j"; "7"; "--skip-micro" ]))

let test_cliargs_value_and_flag () =
  let argv l = Array.of_list ("bench" :: l) in
  let check_opt = Alcotest.(check (option string)) in
  check_opt "--report FILE" (Some "r.json")
    (Cliargs.value_opt ~long:"--report" (argv [ "--report"; "r.json" ]));
  check_opt "--report=FILE" (Some "r.json")
    (Cliargs.value_opt ~long:"--report" (argv [ "--report=r.json" ]));
  check_opt "absent" None (Cliargs.value_opt ~long:"--report" (argv [ "--quick" ]));
  check_opt "last occurrence wins" (Some "b.json")
    (Cliargs.value_opt ~long:"--report"
       (argv [ "--report"; "a.json"; "--report=b.json" ]));
  check_bool "flag present" true (Cliargs.flag [ "--quick" ] (argv [ "--quick" ]));
  check_bool "flag absent" false (Cliargs.flag [ "--quick" ] (argv []));
  check_bool "any spelling" true
    (Cliargs.flag [ "-q"; "--quick" ] (argv [ "-q" ]))

(* ------------------------------------------------------------------ *)
(* Observability under the pool                                       *)
(* ------------------------------------------------------------------ *)

(* Tracing and metrics are process-global; leave both disabled and
   empty for the rest of the suite. *)
let clean_obs f () =
  let wipe () =
    Trace.set_enabled false;
    Trace.reset ();
    Metrics.set_enabled false;
    Metrics.reset ()
  in
  wipe ();
  Fun.protect ~finally:wipe f

(* Worker spans recorded during a sharded stage are grafted into the
   coordinator's tree at the join, tagged with their domain's track. *)
let test_worker_spans_merged () =
  Trace.set_enabled true;
  Trace.reset ();
  with_jobs 4 (fun ctx ->
      Trace.with_span "root" (fun () ->
          ignore
            (Ctx.map_shards ctx ~n:8 ~f:(fun ~budget:_ ~lo ~len ->
                 (* Keep each shard busy long enough that the caller
                    cannot drain the whole queue before a worker wakes. *)
                 Unix.sleepf 0.005;
                 (lo, len)))));
  let tracks = Trace.tracks () in
  check_bool "main + 3 workers registered" true (List.length tracks >= 4);
  check_bool "track 0 is main" true (List.mem_assoc 0 tracks);
  match Trace.roots () with
  | [ root ] ->
    check_int "root on main track" 0 root.Trace.track;
    let shards =
      List.filter (fun s -> s.Trace.name = "shard") root.Trace.children
    in
    check_int "every shard span grafted" 4 (List.length shards);
    check_bool "some shard ran on a worker track" true
      (List.exists (fun s -> s.Trace.track <> 0) shards);
    (* Grafting orders children by (track, start): main-track spans
       keep their open order at the front. *)
    let tracks_in_order = List.map (fun s -> s.Trace.track) shards in
    check_bool "children sorted by track" true
      (tracks_in_order = List.sort compare tracks_in_order)
  | roots -> Alcotest.failf "expected one root span, got %d" (List.length roots)

(* The profile invariant — self times never exceed wall clock — must
   hold on a real multi-domain fault simulation, not just on
   hand-built trees. *)
let test_profile_self_within_wall () =
  let p = pipeline "c432" in
  Trace.set_enabled true;
  Trace.reset ();
  ignore (fsim_report p 4);
  let prof = Profile.current () in
  check_bool "profile has rows" true (prof.Profile.rows <> []);
  let self_sum =
    List.fold_left (fun acc r -> acc +. r.Profile.self_s) 0.0 prof.Profile.rows
  in
  check_bool "sum of self times <= wall" true
    (self_sum <= prof.Profile.wall_s +. 1e-9)

(* The counter convention that makes reports comparable: [fsim.*]
   series describe the logical workload and must not depend on how it
   was sharded; only [exec.*] series may. *)
let logical_series () =
  let snap = Metrics.snapshot () in
  let physical name = String.length name >= 5 && String.sub name 0 5 = "exec." in
  ( List.filter (fun (n, _) -> not (physical n)) snap.Metrics.counters,
    List.filter (fun (n, _) -> not (physical n)) snap.Metrics.histograms )

let test_metrics_identical_across_jobs () =
  let p = pipeline "c432" in
  let run jobs =
    Metrics.set_enabled true;
    Metrics.reset ();
    ignore (fsim_report p jobs);
    let s = logical_series () in
    Metrics.set_enabled false;
    s
  in
  let base = run 1 in
  check_bool "logical counters recorded" true (fst base <> []);
  check_bool "fsim.patterns_simulated present" true
    (List.mem_assoc "fsim.patterns_simulated" (fst base));
  List.iter
    (fun jobs ->
      let got = run jobs in
      if got <> base then begin
        let dump tag (counters, histograms) =
          Printf.eprintf "[%s] counters:\n" tag;
          List.iter (fun (n, v) -> Printf.eprintf "  %s = %d\n" n v) counters;
          Printf.eprintf "[%s] histograms:\n" tag;
          List.iter
            (fun (n, s) ->
              Printf.eprintf "  %s n=%d sum=%g\n" n s.Metrics.n s.Metrics.sum)
            histograms
        in
        dump "jobs 1" base;
        dump (Printf.sprintf "jobs %d" jobs) got
      end;
      check_bool
        (Printf.sprintf "logical series jobs %d ≡ jobs 1" jobs)
        true
        (got = base))
    [ 2; 4 ]

(* Queue-wait and shard-timing histograms only exist on the pool
   path, under the exec.* namespace. Pinned to the packed engine: the
   compiled one finishes c432 so fast that the coordinator (which also
   drains the queue) can complete every shard before a worker wakes,
   and then no queue wait is ever measured. *)
let test_exec_histograms_recorded () =
  Metrics.set_enabled true;
  Metrics.reset ();
  let p = pipeline "c432" in
  ignore
    (with_jobs 4 (fun ctx ->
         let ctx = { ctx with Ctx.engine = Ctx.Packed } in
         let nl = p.Pipeline.netlist in
         let bits = Array.length nl.Mutsamp_netlist.Netlist.input_nets in
         let patterns =
           Prpg.uniform_sequence (Prng.create 11) ~bits ~length:128
         in
         Pipeline.fault_simulate ~ctx p patterns));
  let snap = Metrics.snapshot () in
  check_bool "exec.shard_seconds observed" true
    (List.mem_assoc "exec.shard_seconds" snap.Metrics.histograms);
  check_bool "exec.queue_wait_s observed" true
    (List.mem_assoc "exec.queue_wait_s" snap.Metrics.histograms)

let suite =
  [
    ( "exec.pool",
      [
        Alcotest.test_case "map in index order" `Quick test_pool_map_in_index_order;
        Alcotest.test_case "lowest-index exception wins" `Quick
          test_pool_lowest_index_exception_wins;
        Alcotest.test_case "nested runs inline" `Quick test_pool_nested_runs_inline;
        Alcotest.test_case "shutdown idempotent" `Quick test_pool_shutdown_idempotent;
        Alcotest.test_case "chunk invariants" `Quick test_chunks_invariants;
      ] );
    ( "exec.differential",
      [
        Alcotest.test_case "fault simulation (c17/c432/b01/wide128)" `Quick
          test_fsim_differential;
        Alcotest.test_case "mutant execution (c17)" `Quick test_kill_differential;
        Alcotest.test_case "table1 campaign cells (c17)" `Quick
          test_table1_differential;
        Alcotest.test_case "equivalence classification (c17)" `Quick
          test_classify_equivalents_differential;
        QCheck_alcotest.to_alcotest prop_fsim_random_jobs_identical;
        QCheck_alcotest.to_alcotest prop_chunks_partition;
      ] );
    ( "exec.robust",
      [
        Alcotest.test_case "budget exhaustion deterministic" `Quick
          (clean test_budget_exhaustion_deterministic);
        Alcotest.test_case "chaos in workers deterministic" `Quick
          (clean test_chaos_in_worker_deterministic);
      ] );
    ( "exec.cliargs",
      [
        Alcotest.test_case "jobs spellings" `Quick test_cliargs_jobs_spellings;
        Alcotest.test_case "value and flag lookup" `Quick
          test_cliargs_value_and_flag;
      ] );
    ( "exec.obs",
      [
        Alcotest.test_case "worker spans merged at join" `Quick
          (clean_obs test_worker_spans_merged);
        Alcotest.test_case "profile self times within wall" `Quick
          (clean_obs test_profile_self_within_wall);
        Alcotest.test_case "logical metrics identical across jobs" `Quick
          (clean_obs test_metrics_identical_across_jobs);
        Alcotest.test_case "exec histograms recorded on pool path" `Quick
          (clean_obs test_exec_histograms_recorded);
      ] );
  ]
