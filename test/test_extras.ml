(* Tests for the extension modules: .bench format I/O, test-set
   compaction, fault diagnosis, and the b04 benchmark. *)

module Bitvec = Mutsamp_util.Bitvec
module Prng = Mutsamp_util.Prng
module Netlist = Mutsamp_netlist.Netlist
module Bitsim = Mutsamp_netlist.Bitsim
module Benchfmt = Mutsamp_netlist.Benchfmt
module B = Netlist.Builder
module Fault = Mutsamp_fault.Fault
module Fsim = Mutsamp_fault.Fsim
module Compact = Mutsamp_fault.Compact
module Diagnose = Mutsamp_fault.Diagnose
module Pattern = Mutsamp_fault.Pattern
module Packvec = Mutsamp_util.Packvec
module Registry = Mutsamp_circuits.Registry
module C17 = Mutsamp_circuits.C17
module Sim = Mutsamp_hdl.Sim
module Flow = Mutsamp_synth.Flow
module Prpg = Mutsamp_atpg.Prpg

(* Local stand-ins for the deprecated Fsim int-code conveniences. *)
let pattern_of_code nl code =
  Mutsamp_fault.Pattern.of_code
    ~inputs:(Array.length nl.Mutsamp_netlist.Netlist.input_nets)
    code

let patterns_of_codes nl codes = Array.map (pattern_of_code nl) codes


let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Result-typed imports/checks, unwrapped for tests that expect
   success. *)
let bench_of_string ?name src =
  Mutsamp_robust.Error.ok_exn (Benchfmt.parse ?name src)
let bv w v = Bitvec.make ~width:w v

let full_adder () =
  let b = B.create "fa" in
  let a = B.input b "a" and bb = B.input b "b" and cin = B.input b "cin" in
  let s = B.xor_ b (B.xor_ b a bb) cin in
  let cout = B.or_ b (B.and_ b a bb) (B.or_ b (B.and_ b a cin) (B.and_ b bb cin)) in
  B.output b "s" s;
  B.output b "cout" cout;
  B.finalize b

(* ------------------------------------------------------------------ *)
(* Benchfmt                                                           *)
(* ------------------------------------------------------------------ *)

let c17_bench_text =
  {|# c17 iscas example
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
|}

let test_bench_import_c17 () =
  let nl = bench_of_string ~name:"c17" c17_bench_text in
  check_int "inputs" 5 (Array.length nl.Netlist.input_nets);
  check_int "outputs" 2 (Array.length nl.Netlist.output_list);
  (* Functionally identical to our canonical c17. *)
  let reference = Bitsim.create (C17.netlist ()) in
  let imported = Bitsim.create nl in
  for code = 0 to 31 do
    let words = Array.init 5 (fun k -> if (code lsr k) land 1 = 1 then Bitsim.all_ones else 0) in
    check_bool "same function" true
      (Bitsim.step reference words = Bitsim.step imported words)
  done

let test_bench_roundtrip_combinational () =
  let nl = full_adder () in
  let nl2 = bench_of_string (Benchfmt.to_string nl) in
  let s1 = Bitsim.create nl and s2 = Bitsim.create nl2 in
  for code = 0 to 7 do
    let w3 = Array.init 3 (fun k -> if (code lsr k) land 1 = 1 then Bitsim.all_ones else 0) in
    check_bool "roundtrip function" true (Bitsim.step s1 w3 = Bitsim.step s2 w3)
  done

let test_bench_roundtrip_sequential_with_init () =
  let b = B.create "seq" in
  let en = B.input b "en" in
  let q0 = B.dff b ~init:false in
  let q1 = B.dff b ~init:true in
  B.connect_dff b q0 ~d:(B.xor_ b q0 en);
  B.connect_dff b q1 ~d:(B.and_ b q1 en);
  B.output b "y" (B.xor_ b q0 q1);
  let nl = B.finalize b in
  let nl2 = bench_of_string (Benchfmt.to_string nl) in
  check_int "dffs preserved" 2 (Netlist.num_dffs nl2);
  let s1 = Bitsim.create nl and s2 = Bitsim.create nl2 in
  Bitsim.reset s1;
  Bitsim.reset s2;
  (* Init values must survive the round trip: same 6-cycle trace. *)
  let prng = Prng.create 5 in
  for _ = 1 to 6 do
    let w = [| if Prng.bool prng then Bitsim.all_ones else 0 |] in
    check_bool "trace equal" true (Bitsim.step s1 w = Bitsim.step s2 w)
  done

let test_bench_nary_decomposition () =
  let nl = bench_of_string
      {|INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(y)
y = AND(a, b, c)
|}
  in
  let sim = Bitsim.create nl in
  for code = 0 to 7 do
    let words = Array.init 3 (fun k -> if (code lsr k) land 1 = 1 then Bitsim.all_ones else 0) in
    let y = (Bitsim.step sim words).(0) land 1 in
    check_int "3-input and" (if code = 7 then 1 else 0) y
  done

let test_bench_errors () =
  let expect_fail src =
    match Benchfmt.parse src with
    | Error (Mutsamp_robust.Error.Parse_error _) -> ()
    | Error e -> Alcotest.fail ("wrong error: " ^ Mutsamp_robust.Error.to_string e)
    | Ok _ -> Alcotest.fail "should reject"
  in
  expect_fail "INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n";
  expect_fail "INPUT(a)\nOUTPUT(y)\ny = AND(a, zz)\n";
  expect_fail "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = NOT(a)\n";
  expect_fail "INPUT(a)\nOUTPUT(y)\nbogus line\n"

let test_bench_export_all_circuits_reimport () =
  List.iter
    (fun (e : Registry.entry) ->
      let nl = Flow.synthesize (e.Registry.design ()) in
      let nl2 = bench_of_string ~name:e.Registry.name (Benchfmt.to_string nl) in
      check_int (e.Registry.name ^ " dffs") (Netlist.num_dffs nl) (Netlist.num_dffs nl2);
      (* Spot-check behaviour on a few random cycles. *)
      let s1 = Bitsim.create nl and s2 = Bitsim.create nl2 in
      Bitsim.reset s1;
      Bitsim.reset s2;
      let prng = Prng.create 77 in
      let n_in = Array.length nl.Netlist.input_nets in
      for _ = 1 to 8 do
        let words =
          Array.init n_in (fun _ -> if Prng.bool prng then Bitsim.all_ones else 0)
        in
        check_bool (e.Registry.name ^ " behaviour") true
          (Bitsim.step s1 words = Bitsim.step s2 words)
      done)
    Registry.all

(* Random small netlists for structural property tests: a few inputs,
   a pile of random gates, a couple of flip-flops, random outputs. *)
let random_netlist seed =
  let prng = Prng.create seed in
  let b = B.create (Printf.sprintf "rand%d" seed) in
  let n_inputs = 2 + Prng.int prng 3 in
  let pool = ref (List.init n_inputs (fun k -> B.input b (Printf.sprintf "i%d" k))) in
  let dffs =
    List.init (Prng.int prng 3) (fun _ ->
        let q = B.dff b ~init:(Prng.bool prng) in
        pool := q :: !pool;
        q)
  in
  let pick () = Prng.pick_list prng !pool in
  for _ = 1 to 6 + Prng.int prng 12 do
    let x = pick () and y = pick () in
    let g =
      match Prng.int prng 7 with
      | 0 -> B.and_ b x y
      | 1 -> B.or_ b x y
      | 2 -> B.xor_ b x y
      | 3 -> B.nand_ b x y
      | 4 -> B.nor_ b x y
      | 5 -> B.xnor_ b x y
      | _ -> B.not_ b x
    in
    pool := g :: !pool
  done;
  List.iter (fun q -> B.connect_dff b q ~d:(pick ())) dffs;
  let n_outputs = 1 + Prng.int prng 3 in
  for k = 0 to n_outputs - 1 do
    B.output b (Printf.sprintf "o%d" k) (pick ())
  done;
  B.finalize b

let same_behaviour ?(cycles = 12) seed nl1 nl2 =
  let s1 = Bitsim.create nl1 and s2 = Bitsim.create nl2 in
  Bitsim.reset s1;
  Bitsim.reset s2;
  let prng = Prng.create seed in
  let n_in = Array.length nl1.Netlist.input_nets in
  let ok = ref true in
  for _ = 1 to cycles do
    let words = Array.init n_in (fun _ -> if Prng.bool prng then Bitsim.all_ones else 0) in
    if Bitsim.step s1 words <> Bitsim.step s2 words then ok := false
  done;
  !ok

let prop_bench_roundtrip_random =
  QCheck.Test.make ~name:".bench roundtrip on random netlists" ~count:80
    (QCheck.make QCheck.Gen.(int_range 0 1000000)) (fun seed ->
      let nl = random_netlist seed in
      let nl2 = bench_of_string ~name:"rt" (Benchfmt.to_string nl) in
      same_behaviour (seed + 1) nl nl2)

let prop_nand_mapping_random =
  QCheck.Test.make ~name:"NAND mapping on random netlists" ~count:80
    (QCheck.make QCheck.Gen.(int_range 0 1000000)) (fun seed ->
      let nl = random_netlist seed in
      same_behaviour (seed + 2) nl (Mutsamp_synth.Optimize.to_nand_only nl))

(* ------------------------------------------------------------------ *)
(* Compact                                                            *)
(* ------------------------------------------------------------------ *)

let coverage nl faults patterns =
  Fsim.coverage_percent (Fsim.run nl ~faults ~sequence:patterns)

let test_compact_preserves_coverage () =
  let nl = full_adder () in
  let faults = Fault.full_list nl in
  let prng = Prng.create 3 in
  let patterns = Prpg.uniform_sequence prng ~bits:3 ~length:64 in
  let reference = coverage nl faults patterns in
  let rev = Compact.reverse_order nl ~faults ~patterns:patterns in
  let greedy = Compact.greedy_cover nl ~faults ~patterns:patterns in
  Alcotest.(check (float 1e-9)) "reverse coverage" reference (coverage nl faults rev);
  Alcotest.(check (float 1e-9)) "greedy coverage" reference (coverage nl faults greedy);
  check_bool "reverse smaller" true (Array.length rev <= Array.length patterns);
  check_bool "greedy smaller or equal reverse+slack" true
    (Array.length greedy <= Array.length rev)

let test_compact_idempotent_on_minimal () =
  let nl = full_adder () in
  let faults = Fault.full_list nl in
  let patterns = Prpg.uniform_sequence (Prng.create 4) ~bits:3 ~length:64 in
  let greedy = Compact.greedy_cover nl ~faults ~patterns:patterns in
  let again = Compact.greedy_cover nl ~faults ~patterns:greedy in
  check_int "stable size" (Array.length greedy) (Array.length again)

let prop_compact_preserves_coverage =
  let gen = QCheck.Gen.(pair (int_range 0 100000) (int_range 4 40)) in
  QCheck.Test.make ~name:"compaction preserves coverage" ~count:40
    (QCheck.make gen) (fun (seed, n) ->
      let nl = full_adder () in
      let faults = Fault.full_list nl in
      let patterns = Prpg.uniform_sequence (Prng.create seed) ~bits:3 ~length:n in
      let reference = coverage nl faults patterns in
      let rev = Compact.reverse_order nl ~faults ~patterns:patterns in
      let greedy = Compact.greedy_cover nl ~faults ~patterns:patterns in
      coverage nl faults rev = reference && coverage nl faults greedy = reference)

(* ------------------------------------------------------------------ *)
(* Diagnose                                                           *)
(* ------------------------------------------------------------------ *)

let test_diagnose_recovers_injected_fault () =
  let nl = full_adder () in
  let faults = Fault.full_list nl in
  let prng = Prng.create 9 in
  (* Inject a random fault, observe all 8 patterns, diagnose. *)
  for _ = 1 to 10 do
    let injected = List.nth faults (Prng.int prng (List.length faults)) in
    let observations =
      List.init 8 (fun code ->
          let p = pattern_of_code nl code in
          { Diagnose.pattern = p;
            response = Diagnose.simulate_response nl (Some injected) p })
    in
    let suspects = Diagnose.perfect_matches nl ~candidates:faults ~observations in
    check_bool "injected fault among suspects" true
      (List.exists (Fault.equal injected) suspects)
  done

let test_diagnose_good_machine_rejects_all () =
  let nl = full_adder () in
  let faults = Fault.full_list nl in
  (* Responses of the GOOD machine: only undetectable-by-these-patterns
     candidates can explain them; with exhaustive patterns, none (the
     full adder has no untestable faults). *)
  let observations =
    List.init 8 (fun code ->
        let p = pattern_of_code nl code in
        { Diagnose.pattern = p; response = Diagnose.simulate_response nl None p })
  in
  let suspects = Diagnose.perfect_matches nl ~candidates:faults ~observations in
  check_int "no suspects" 0 (List.length suspects)

let test_diagnose_ranking_sane () =
  let nl = full_adder () in
  let faults = Fault.full_list nl in
  let injected = List.hd faults in
  let observations =
    List.init 8 (fun code ->
        let p = pattern_of_code nl code in
        { Diagnose.pattern = p;
          response = Diagnose.simulate_response nl (Some injected) p })
  in
  let ranked = Diagnose.rank nl ~candidates:faults ~observations in
  (match ranked with
   | best :: _ -> check_bool "top explains" true best.Diagnose.explains
   | [] -> Alcotest.fail "empty ranking");
  (* Scores are non-increasing. *)
  let rec monotone = function
    | a :: (b :: _ as rest) ->
      check_bool "sorted" true (a.Diagnose.matches >= b.Diagnose.matches);
      monotone rest
    | _ -> ()
  in
  monotone ranked

let test_diagnose_rejects_sequential () =
  let b = B.create "seq" in
  let x = B.input b "x" in
  let q = B.dff b ~init:false in
  B.connect_dff b q ~d:x;
  B.output b "y" q;
  let nl = B.finalize b in
  (try
     ignore
       (Diagnose.rank nl
          ~candidates:(Fault.full_list nl)
          ~observations:
            [ { Diagnose.pattern = pattern_of_code nl 0;
                response = Packvec.create 1 } ]);
     Alcotest.fail "should reject"
   with Invalid_argument _ -> ())

(* ------------------------------------------------------------------ *)
(* Testpoints                                                         *)
(* ------------------------------------------------------------------ *)

module Testpoints = Mutsamp_atpg.Testpoints
module Collapse = Mutsamp_fault.Collapse

let c432_netlist =
  lazy
    (match Registry.find "c432" with
     | Some e -> Flow.synthesize (e.Registry.design ())
     | None -> Alcotest.fail "c432 missing")

let test_testpoints_selection_valid () =
  let nl = Lazy.force c432_netlist in
  let nets = Testpoints.worst_observability nl ~n:8 in
  check_int "eight nets" 8 (List.length nets);
  let outputs = Array.to_list (Array.map snd nl.Netlist.output_list) in
  List.iter
    (fun net ->
      check_bool "not already observed" false (List.mem net outputs);
      check_bool "combinational gate" true
        (match nl.Netlist.gates.(net).Mutsamp_netlist.Gate.kind with
         | Mutsamp_netlist.Gate.Pi _ | Mutsamp_netlist.Gate.Const _
         | Mutsamp_netlist.Gate.Dff _ -> false
         | _ -> true))
    nets

let test_testpoints_insertion_coverage () =
  let nl = Lazy.force c432_netlist in
  let faults = (Collapse.run nl).Collapse.representatives in
  let patterns = Prpg.uniform_sequence (Prng.create 50) ~bits:36 ~length:124 in
  let base = Fsim.run nl ~faults ~sequence:patterns in
  let with_tp = Testpoints.auto_insert nl ~n:16 in
  (* The fault list refers to the SAME nets (insertion only appends
     outputs), so the comparison is apples to apples. *)
  let improved = Fsim.run with_tp ~faults ~sequence:patterns in
  check_bool "coverage never drops" true
    (Fsim.coverage_percent improved >= Fsim.coverage_percent base -. 1e-9);
  check_bool "observation points help c432" true
    (improved.Fsim.detected > base.Fsim.detected)

let test_testpoints_preserve_function () =
  let nl = Lazy.force c432_netlist in
  let with_tp = Testpoints.auto_insert nl ~n:4 in
  (* Original outputs unchanged, in place, same order. *)
  let n_orig = Array.length nl.Netlist.output_list in
  Array.iteri
    (fun i (name, net) ->
      if i < n_orig then begin
        let name', net' = with_tp.Netlist.output_list.(i) in
        check_bool "same name" true (name = name');
        check_int "same net" net net'
      end)
    with_tp.Netlist.output_list

(* ------------------------------------------------------------------ *)
(* Weighted patterns                                                  *)
(* ------------------------------------------------------------------ *)

let test_weighted_extremes () =
  let prng = Prng.create 1 in
  let all_one = Prpg.weighted_sequence prng ~one_probability:(Array.make 8 1.) ~length:20 in
  Array.iter (fun c -> check_int "all ones" 255 (Pattern.to_code c)) all_one;
  let all_zero = Prpg.weighted_sequence prng ~one_probability:(Array.make 8 0.) ~length:20 in
  Array.iter (fun c -> check_int "all zeros" 0 (Pattern.to_code c)) all_zero

let test_weighted_bias () =
  let prng = Prng.create 2 in
  let profile = [| 0.9; 0.1 |] in
  let seq = Prpg.weighted_sequence prng ~one_probability:profile ~length:2000 in
  let count bit =
    Array.fold_left (fun acc c -> acc + if Pattern.get c bit then 1 else 0) 0 seq
  in
  let p0 = float_of_int (count 0) /. 2000. in
  let p1 = float_of_int (count 1) /. 2000. in
  check_bool "bit0 biased high" true (p0 > 0.85 && p0 < 0.95);
  check_bool "bit1 biased low" true (p1 > 0.05 && p1 < 0.15)

(* ------------------------------------------------------------------ *)
(* Fault dictionary                                                   *)
(* ------------------------------------------------------------------ *)

let test_dictionary_agrees_with_rank () =
  let nl = full_adder () in
  let candidates = Fault.full_list nl in
  let patterns = patterns_of_codes nl (Array.init 8 (fun i -> i)) in
  let dict = Diagnose.build nl ~candidates ~patterns:patterns in
  let prng = Prng.create 31 in
  for _ = 1 to 10 do
    let injected = List.nth candidates (Prng.int prng (List.length candidates)) in
    let responses =
      Array.map (fun p -> Diagnose.simulate_response nl (Some injected) p) patterns
    in
    let via_dict = Diagnose.lookup dict ~responses in
    let via_rank =
      Diagnose.perfect_matches nl ~candidates
        ~observations:
          (Array.to_list
             (Array.mapi (fun i p -> { Diagnose.pattern = p; response = responses.(i) }) patterns))
    in
    check_bool "same suspects" true
      (List.sort Fault.compare via_dict = List.sort Fault.compare via_rank);
    check_bool "injected found" true (List.exists (Fault.equal injected) via_dict)
  done

let test_dictionary_rejects_wrong_arity () =
  let nl = full_adder () in
  let dict =
    Diagnose.build nl ~candidates:(Fault.full_list nl)
      ~patterns:(patterns_of_codes nl [| 0; 1 |])
  in
  (try
     ignore (Diagnose.lookup dict ~responses:[| Packvec.create 2 |]);
     Alcotest.fail "should reject"
   with Invalid_argument _ -> ())

(* ------------------------------------------------------------------ *)
(* Vcd                                                                *)
(* ------------------------------------------------------------------ *)

module Vcd = Mutsamp_netlist.Vcd

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  scan 0

let test_vcd_structure () =
  let nl = full_adder () in
  let sim = Bitsim.create nl in
  let rec_ = Vcd.create nl ~timescale:"1ns" in
  for code = 0 to 3 do
    ignore (Bitsim.step sim (Array.init 3 (fun k -> if (code lsr k) land 1 = 1 then Bitsim.all_ones else 0)));
    Vcd.sample rec_ sim
  done;
  let out = Vcd.contents rec_ in
  check_bool "timescale" true (contains out "$timescale 1ns $end");
  check_bool "module scope" true (contains out "$scope module fa $end");
  check_bool "declares input a" true (contains out " a $end");
  check_bool "has four timestamps" true (contains out "#3");
  check_bool "enddefinitions" true (contains out "$enddefinitions $end")

let test_vcd_change_compression () =
  (* A constant signal appears once (at #0), not at every timestamp. *)
  let b = B.create "t" in
  let a = B.input b "a" in
  B.output b "y" a;
  let nl = B.finalize b in
  let sim = Bitsim.create nl in
  let rec_ = Vcd.create nl ~timescale:"1ns" in
  for _ = 1 to 4 do
    ignore (Bitsim.step sim [| 0 |]);
    Vcd.sample rec_ sim
  done;
  let out = Vcd.contents rec_ in
  (* Count value-change lines for the single net: exactly one "0!" *)
  let changes =
    List.length
      (List.filter (fun l -> l = "0!") (String.split_on_char '\n' out))
  in
  check_int "one change" 1 changes

(* ------------------------------------------------------------------ *)
(* NAND mapping / redundancy removal                                  *)
(* ------------------------------------------------------------------ *)

module Optimize = Mutsamp_synth.Optimize
module Redundancy = Mutsamp_atpg.Redundancy
module Equiv = Mutsamp_sat.Equiv

let equiv a b = Mutsamp_robust.Error.ok_exn (Equiv.check a b)
module Gate = Mutsamp_netlist.Gate

let test_nand_mapping_only_nands () =
  let nl = Optimize.to_nand_only (full_adder ()) in
  Array.iter
    (fun (g : Gate.t) ->
      match g.Gate.kind with
      | Gate.Pi _ | Gate.Const _ | Gate.Dff _ | Gate.Nand | Gate.Not -> ()
      | k -> Alcotest.fail ("unexpected gate " ^ Gate.kind_name k))
    nl.Netlist.gates

let test_nand_mapping_equivalent () =
  List.iter
    (fun (e : Registry.entry) ->
      let nl = Flow.synthesize (e.Registry.design ()) in
      if Netlist.num_dffs nl = 0 then begin
        let mapped = Optimize.to_nand_only nl in
        match equiv nl mapped with
        | Equiv.Equivalent -> ()
        | Equiv.Counterexample _ ->
          Alcotest.fail (e.Registry.name ^ ": NAND mapping changed the function")
      end)
    Registry.all

let test_nand_mapping_sequential_trace () =
  let e = Option.get (Registry.find "b02") in
  let nl = Flow.synthesize (e.Registry.design ()) in
  let mapped = Optimize.to_nand_only nl in
  check_int "dffs preserved" (Netlist.num_dffs nl) (Netlist.num_dffs mapped);
  let s1 = Bitsim.create nl and s2 = Bitsim.create mapped in
  Bitsim.reset s1;
  Bitsim.reset s2;
  let prng = Prng.create 123 in
  for _ = 1 to 24 do
    let w = [| (if Prng.bool prng then Bitsim.all_ones else 0) |] in
    check_bool "trace equal" true (Bitsim.step s1 w = Bitsim.step s2 w)
  done

(* A netlist with known redundancy: y = a or (a and b). *)
let redundant_netlist () =
  let b = B.create "red" in
  let a = B.input b "a" and bb = B.input b "bb" in
  let band = B.and_ b a bb in
  let y = B.or_ b a band in
  B.output b "y" y;
  B.finalize b

let test_redundancy_removal_ties_and_shrinks () =
  let nl = redundant_netlist () in
  let cleaned, tied = Redundancy.remove nl in
  check_bool "tied something" true (tied >= 1);
  check_bool "fewer gates" true
    (Netlist.num_logic_gates cleaned < Netlist.num_logic_gates nl);
  (match equiv nl cleaned with
   | Equiv.Equivalent -> ()
   | Equiv.Counterexample _ -> Alcotest.fail "function changed")

let test_redundancy_removal_idempotent_on_clean () =
  let nl = full_adder () in
  let cleaned, tied = Redundancy.remove nl in
  check_int "nothing to tie" 0 tied;
  check_int "same size" (Netlist.num_logic_gates nl) (Netlist.num_logic_gates cleaned)

let test_redundancy_removal_c432 () =
  let nl = Lazy.force c432_netlist in
  let cleaned, tied = Redundancy.remove nl in
  check_bool "c432 had redundancy" true (tied > 0);
  (match equiv nl cleaned with
   | Equiv.Equivalent -> ()
   | Equiv.Counterexample _ -> Alcotest.fail "function changed")

(* ------------------------------------------------------------------ *)
(* b04                                                                *)
(* ------------------------------------------------------------------ *)

let b04_design () =
  match Registry.find "b04" with
  | Some e -> e.Registry.design ()
  | None -> Alcotest.fail "b04 missing"

let b04_stim restart data = [ ("restart", bv 1 restart); ("data", bv 8 data) ]

let test_b04_tracks_spread () =
  let d = b04_design () in
  let outs = Sim.run d [ b04_stim 1 100; b04_stim 0 150; b04_stim 0 80; b04_stim 0 120 ] in
  let dout i = Bitvec.to_int (List.assoc "dout" (List.nth outs i)) in
  check_int "restart clears" 0 (dout 0);
  (* After restart at 100: cycle1 sees rmax=rmin=100 -> spread 0, then
     150 and 80 widen it. *)
  check_int "cycle1 spread" 0 (dout 1);
  check_int "cycle2 spread" 50 (dout 2);
  check_int "cycle3 spread" 70 (dout 3)

let test_b04_fresh_pulse () =
  let d = b04_design () in
  let outs = Sim.run d [ b04_stim 1 10; b04_stim 0 10 ] in
  check_int "fresh on restart" 1
    (Bitvec.to_int (List.assoc "fresh" (List.nth outs 0)));
  check_int "fresh off after" 0
    (Bitvec.to_int (List.assoc "fresh" (List.nth outs 1)))

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ( "extras.benchfmt",
      [
        Alcotest.test_case "import c17" `Quick test_bench_import_c17;
        Alcotest.test_case "roundtrip comb" `Quick test_bench_roundtrip_combinational;
        Alcotest.test_case "roundtrip seq + init" `Quick test_bench_roundtrip_sequential_with_init;
        Alcotest.test_case "n-ary decomposition" `Quick test_bench_nary_decomposition;
        Alcotest.test_case "errors" `Quick test_bench_errors;
        Alcotest.test_case "export/import all" `Quick test_bench_export_all_circuits_reimport;
        q prop_bench_roundtrip_random;
      ] );
    ( "extras.compact",
      [
        Alcotest.test_case "preserves coverage" `Quick test_compact_preserves_coverage;
        Alcotest.test_case "idempotent" `Quick test_compact_idempotent_on_minimal;
        q prop_compact_preserves_coverage;
      ] );
    ( "extras.diagnose",
      [
        Alcotest.test_case "recovers injected" `Quick test_diagnose_recovers_injected_fault;
        Alcotest.test_case "good machine" `Quick test_diagnose_good_machine_rejects_all;
        Alcotest.test_case "ranking sane" `Quick test_diagnose_ranking_sane;
        Alcotest.test_case "rejects sequential" `Quick test_diagnose_rejects_sequential;
      ] );
    ( "extras.testpoints",
      [
        Alcotest.test_case "selection valid" `Quick test_testpoints_selection_valid;
        Alcotest.test_case "coverage improves" `Quick test_testpoints_insertion_coverage;
        Alcotest.test_case "function preserved" `Quick test_testpoints_preserve_function;
      ] );
    ( "extras.weighted",
      [
        Alcotest.test_case "extremes" `Quick test_weighted_extremes;
        Alcotest.test_case "bias" `Quick test_weighted_bias;
      ] );
    ( "extras.dictionary",
      [
        Alcotest.test_case "agrees with rank" `Quick test_dictionary_agrees_with_rank;
        Alcotest.test_case "arity check" `Quick test_dictionary_rejects_wrong_arity;
      ] );
    ( "extras.vcd",
      [
        Alcotest.test_case "structure" `Quick test_vcd_structure;
        Alcotest.test_case "change compression" `Quick test_vcd_change_compression;
      ] );
    ( "extras.nand_mapping",
      [
        Alcotest.test_case "only nands" `Quick test_nand_mapping_only_nands;
        Alcotest.test_case "equivalent" `Quick test_nand_mapping_equivalent;
        Alcotest.test_case "sequential trace" `Quick test_nand_mapping_sequential_trace;
        q prop_nand_mapping_random;
      ] );
    ( "extras.redundancy",
      [
        Alcotest.test_case "ties and shrinks" `Quick test_redundancy_removal_ties_and_shrinks;
        Alcotest.test_case "idempotent on clean" `Quick test_redundancy_removal_idempotent_on_clean;
        Alcotest.test_case "c432" `Quick test_redundancy_removal_c432;
      ] );
    ( "extras.b04",
      [
        Alcotest.test_case "tracks spread" `Quick test_b04_tracks_spread;
        Alcotest.test_case "fresh pulse" `Quick test_b04_fresh_pulse;
      ] );
  ]
