(* Tests for lib/synth: word gadgets, lowering, sweep, mapping, and the
   central property that synthesis preserves behaviour. *)

module Bitvec = Mutsamp_util.Bitvec
module Prng = Mutsamp_util.Prng
module Ast = Mutsamp_hdl.Ast
module Parser = Mutsamp_hdl.Parser
module Check = Mutsamp_hdl.Check
module Sim = Mutsamp_hdl.Sim
module Stimuli = Mutsamp_hdl.Stimuli
module Netlist = Mutsamp_netlist.Netlist
module Bitsim = Mutsamp_netlist.Bitsim
module Stats = Mutsamp_netlist.Stats
module Wordlib = Mutsamp_synth.Wordlib
module Lower = Mutsamp_synth.Lower
module Optimize = Mutsamp_synth.Optimize
module Mapping = Mutsamp_synth.Mapping
module Flow = Mutsamp_synth.Flow
module B = Netlist.Builder

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let bv w v = Bitvec.make ~width:w v
let parse src =
  Check.elaborate (Mutsamp_robust.Error.ok_exn (Parser.design_result src))

(* ------------------------------------------------------------------ *)
(* Wordlib: evaluate gadgets exhaustively on small widths             *)
(* ------------------------------------------------------------------ *)

(* Build a 2-operand gadget netlist with 3-bit inputs and evaluate it
   on concrete values via Bitsim. *)
let eval_gadget2 build_out a_val b_val =
  let b = B.create "gadget" in
  let a = Array.init 3 (fun i -> B.input b (Printf.sprintf "a%d" i)) in
  let bb = Array.init 3 (fun i -> B.input b (Printf.sprintf "b%d" i)) in
  let out : Wordlib.word = build_out b a bb in
  Array.iteri (fun i net -> B.output b (Printf.sprintf "y%d" i) net) out;
  let nl = B.finalize b in
  let sim = Bitsim.create nl in
  let inputs =
    Array.init 6 (fun k ->
        let v = if k < 3 then (a_val lsr k) land 1 else (b_val lsr (k - 3)) land 1 in
        if v = 1 then Bitsim.all_ones else 0)
  in
  let outs = Bitsim.step sim inputs in
  Array.fold_left (fun (acc, i) w -> (acc lor ((w land 1) lsl i), i + 1)) (0, 0) outs
  |> fst

let test_wordlib_add_exhaustive () =
  for a = 0 to 7 do
    for b = 0 to 7 do
      check_int
        (Printf.sprintf "%d+%d" a b)
        ((a + b) land 7)
        (eval_gadget2 Wordlib.add a b)
    done
  done

let test_wordlib_sub_exhaustive () =
  for a = 0 to 7 do
    for b = 0 to 7 do
      check_int
        (Printf.sprintf "%d-%d" a b)
        ((a - b) land 7)
        (eval_gadget2 Wordlib.sub a b)
    done
  done

let test_wordlib_lt_exhaustive () =
  for a = 0 to 7 do
    for b = 0 to 7 do
      check_int
        (Printf.sprintf "%d<%d" a b)
        (if a < b then 1 else 0)
        (eval_gadget2 (fun bd x y -> [| Wordlib.lt bd x y |]) a b)
    done
  done

let test_wordlib_eq_exhaustive () =
  for a = 0 to 7 do
    for b = 0 to 7 do
      check_int
        (Printf.sprintf "%d=%d" a b)
        (if a = b then 1 else 0)
        (eval_gadget2 (fun bd x y -> [| Wordlib.eq bd x y |]) a b)
    done
  done

let test_wordlib_le_ge_gt () =
  for a = 0 to 7 do
    for b = 0 to 7 do
      check_int "le" (if a <= b then 1 else 0)
        (eval_gadget2 (fun bd x y -> [| Wordlib.le bd x y |]) a b);
      check_int "ge" (if a >= b then 1 else 0)
        (eval_gadget2 (fun bd x y -> [| Wordlib.ge bd x y |]) a b);
      check_int "gt" (if a > b then 1 else 0)
        (eval_gadget2 (fun bd x y -> [| Wordlib.gt bd x y |]) a b)
    done
  done

let test_wordlib_logic () =
  for a = 0 to 7 do
    for b = 0 to 7 do
      check_int "and" (a land b) (eval_gadget2 Wordlib.logand a b);
      check_int "nand" (lnot (a land b) land 7) (eval_gadget2 Wordlib.lognand a b);
      check_int "xor" (a lxor b) (eval_gadget2 Wordlib.logxor a b)
    done
  done

let test_wordlib_resize () =
  let b = B.create "t" in
  let x = Array.init 2 (fun i -> B.input b (Printf.sprintf "x%d" i)) in
  let wide = Wordlib.resize b x 4 in
  check_int "extended width" 4 (Array.length wide);
  let narrow = Wordlib.resize b wide 1 in
  check_int "truncated width" 1 (Array.length narrow);
  check_int "lsb preserved" x.(0) narrow.(0)

(* ------------------------------------------------------------------ *)
(* Lowering + sweep                                                   *)
(* ------------------------------------------------------------------ *)

let counter_src =
  {|design counter is
  input en : bit;
  output q : unsigned(3);
  output wrap : bit;
  reg count : unsigned(3) := 0;
begin
  q := count;
  wrap := '0';
  if en = '1' then
    if count = 7 then
      count := 0;
      wrap := '1';
    else
      count := count + 1;
    end if;
  end if;
end design;|}

let alu_src =
  {|design mini_alu is
  input a : unsigned(4);
  input b : unsigned(4);
  input op : unsigned(2);
  output y : unsigned(4);
  output flag : bit;
begin
  flag := a < b;
  case op is
    when 0 => y := a + b;
    when 1 => y := a - b;
    when 2 => y := a and b;
    when others => y := a xor b;
  end case;
end design;|}

let fsm_src =
  {|design fsm is
  input go : bit;
  input stop : bit;
  output busy : bit;
  output done_o : bit;
  reg state : unsigned(2) := 0;
  const IDLE : unsigned(2) := 0;
  const RUN : unsigned(2) := 1;
  const DONE : unsigned(2) := 2;
begin
  busy := '0';
  done_o := '0';
  case state is
    when 0 =>
      if go = '1' then
        state := RUN;
      end if;
    when 1 =>
      busy := '1';
      if stop = '1' then
        state := DONE;
      end if;
    when 2 =>
      done_o := '1';
      state := IDLE;
    when others =>
      state := IDLE;
  end case;
end design;|}

let test_lower_counter_structure () =
  let d = parse counter_src in
  let nl = Lower.run d in
  check_int "input bits" 1 (Array.length nl.Netlist.input_nets);
  check_int "output bits" 4 (Array.length nl.Netlist.output_list);
  check_int "dffs" 3 (Netlist.num_dffs nl)

let test_lower_rejects_unelaborated () =
  let raw = Mutsamp_robust.Error.ok_exn (Parser.design_result counter_src) in
  (try
     ignore (Lower.run raw);
     Alcotest.fail "should reject"
   with Lower.Synth_error _ -> ())

let test_sweep_removes_dead_logic () =
  (* A var computed but never used downstream must vanish. *)
  let d =
    parse
      {|design dead is
  input a : unsigned(4);
  input b : unsigned(4);
  output y : bit;
  var unused : unsigned(4);
begin
  unused := a + b;
  y := a[0];
end design;|}
  in
  let raw = Lower.run d in
  let swept, removed = Optimize.sweep_stats raw in
  check_bool "something removed" true (removed > 0);
  check_bool "fewer gates" true (Netlist.num_gates swept < Netlist.num_gates raw);
  (* Inputs survive sweeping even when unused. *)
  check_int "inputs kept" 8 (Array.length swept.Netlist.input_nets)

let test_sweep_preserves_interface_order () =
  let d = parse alu_src in
  let raw = Lower.run d in
  let swept = Optimize.sweep raw in
  Alcotest.(check (array string))
    "input names"
    (Netlist.input_names raw)
    (Netlist.input_names swept);
  Alcotest.(check (array string))
    "output names"
    (Array.map fst raw.Netlist.output_list)
    (Array.map fst swept.Netlist.output_list)

(* ------------------------------------------------------------------ *)
(* Mapping + behavioural equivalence                                  *)
(* ------------------------------------------------------------------ *)

(* The central synthesis-correctness check: for random stimuli, the HDL
   simulator and the synthesised netlist agree cycle by cycle. *)
let agree_on_random_sequences ?(sequences = 20) ?(length = 16) src =
  let d = parse src in
  let nl, mapping = Flow.synthesize_mapped d in
  ignore nl;
  let prng = Prng.create 0xC0FFEE in
  let net_sim = Bitsim.create (Mapping.netlist mapping) in
  for _ = 1 to sequences do
    let seq = Stimuli.random_sequence prng d length in
    let hdl_outs = Sim.run d seq in
    Bitsim.reset net_sim;
    List.iter2
      (fun stim expected ->
        let words = Bitsim.step net_sim (Mapping.pack_stimulus mapping stim) in
        let got = Mapping.unpack_outputs mapping words ~lane:0 in
        if not (Sim.outputs_equal got expected) then
          Alcotest.fail
            (Printf.sprintf "%s: netlist diverges from HDL sim" d.Ast.name))
      seq hdl_outs
  done

let test_equiv_counter () = agree_on_random_sequences counter_src
let test_equiv_alu () = agree_on_random_sequences alu_src
let test_equiv_fsm () = agree_on_random_sequences fsm_src

let test_equiv_alu_exhaustive () =
  (* 10 input bits: check all 1024 vectors via lane packing. *)
  let d = parse alu_src in
  let _, mapping = Flow.synthesize_mapped d in
  let net_sim = Bitsim.create (Mapping.netlist mapping) in
  let all = Array.of_list (Stimuli.enumerate d) in
  let chunks = (Array.length all + Bitsim.word_bits - 1) / Bitsim.word_bits in
  for c = 0 to chunks - 1 do
    let lo = c * Bitsim.word_bits in
    let batch = Array.sub all lo (min Bitsim.word_bits (Array.length all - lo)) in
    let words = Bitsim.step net_sim (Mapping.pack_stimuli mapping batch) in
    Array.iteri
      (fun lane stim ->
        let got = Mapping.unpack_outputs mapping words ~lane in
        let expected = List.concat (Sim.run d [ stim ]) in
        check_bool "lane agrees" true (Sim.outputs_equal got expected))
      batch
  done

let test_mapping_missing_input () =
  let d = parse alu_src in
  let _, mapping = Flow.synthesize_mapped d in
  (try
     ignore (Mapping.pack_stimulus mapping [ ("a", bv 4 0) ]);
     Alcotest.fail "should fail"
   with Mapping.Mapping_error _ -> ())

let test_bit_name () =
  Alcotest.(check string) "wide" "data[3]" (Lower.bit_name "data" 8 3);
  Alcotest.(check string) "single" "en" (Lower.bit_name "en" 1 0)

(* Property: random expression designs synthesise correctly. *)
let prop_random_expr_designs =
  let gen =
    QCheck.Gen.(
      pair (int_range 0 1000000) (int_range 1 3) >|= fun (seed, depth) ->
      (seed, depth))
  in
  QCheck.Test.make ~name:"random designs: HDL sim = netlist sim" ~count:60
    (QCheck.make gen) (fun (seed, depth) ->
      let prng = Prng.create seed in
      (* Random expression over a, b (4-bit) and c (1-bit). *)
      let rec gen_e d w =
        if d = 0 then
          match Prng.int prng 3 with
          | 0 -> if w = 4 then Ast.Ref "a" else Ast.Ref "c"
          | 1 -> if w = 4 then Ast.Ref "b" else Ast.Ref "c"
          | _ -> Ast.const ~width:w (Prng.int prng (1 lsl w))
        else
          match Prng.int prng 6 with
          | 0 -> Ast.Unop (Ast.Not, gen_e (d - 1) w)
          | 1 ->
            let ops = [| Ast.Add; Ast.Sub; Ast.And; Ast.Or; Ast.Xor; Ast.Nand; Ast.Nor; Ast.Xnor |] in
            Ast.Binop (Prng.pick prng ops, gen_e (d - 1) w, gen_e (d - 1) w)
          | 2 when w = 1 ->
            let ops = [| Ast.Eq; Ast.Neq; Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge |] in
            Ast.Binop (Prng.pick prng ops, gen_e (d - 1) 4, gen_e (d - 1) 4)
          | 3 when w = 1 -> Ast.Bit (gen_e (d - 1) 4, Prng.int prng 4)
          | 4 when w = 4 -> Ast.Resize (gen_e (d - 1) 1, 4)
          | _ -> gen_e 0 w
      in
      let decls =
        [
          { Ast.name = "a"; width = 4; kind = Ast.Input };
          { Ast.name = "b"; width = 4; kind = Ast.Input };
          { Ast.name = "c"; width = 1; kind = Ast.Input };
          { Ast.name = "y"; width = 4; kind = Ast.Output };
          { Ast.name = "z"; width = 1; kind = Ast.Output };
        ]
      in
      let d =
        {
          Ast.name = "rand";
          decls;
          body =
            [ Ast.Assign ("y", gen_e depth 4); Ast.Assign ("z", gen_e depth 1) ];
        }
      in
      let _, mapping = Flow.synthesize_mapped d in
      let net_sim = Bitsim.create (Mapping.netlist mapping) in
      List.for_all
        (fun stim ->
          let words = Bitsim.step net_sim (Mapping.pack_stimulus mapping stim) in
          let got = Mapping.unpack_outputs mapping words ~lane:0 in
          let expected = List.concat (Sim.run d [ stim ]) in
          Sim.outputs_equal got expected)
        (List.init 32 (fun _ -> Stimuli.random prng d)))

(* Property: whole random designs — statements, control flow, registers
   — synthesise correctly. This exercises if-merging, the one-hot case
   lowering and register next-state muxing, beyond the pure-expression
   fuzz above. *)
let prop_random_stmt_designs =
  let gen = QCheck.Gen.int_range 0 1000000 in
  QCheck.Test.make ~name:"random FSM designs: HDL sim = netlist sim" ~count:40
    (QCheck.make gen) (fun seed ->
      let prng = Prng.create seed in
      let decls =
        [
          { Ast.name = "a"; width = 3; kind = Ast.Input };
          { Ast.name = "c"; width = 1; kind = Ast.Input };
          { Ast.name = "y"; width = 3; kind = Ast.Output };
          { Ast.name = "z"; width = 1; kind = Ast.Output };
          { Ast.name = "r"; width = 3; kind = Ast.Reg (Ast.lit ~width:3 (Prng.int prng 8)) };
          { Ast.name = "v"; width = 3; kind = Ast.Var };
          { Ast.name = "k"; width = 3; kind = Ast.Const_decl (Ast.lit ~width:3 5) };
        ]
      in
      let rand_name w =
        if w = 3 then Prng.pick prng [| "a"; "r"; "v"; "k" |] else "c"
      in
      let rec gen_e depth w =
        if depth = 0 then
          if Prng.bool prng then Ast.Ref (rand_name w)
          else Ast.const ~width:w (Prng.int prng (1 lsl w))
        else
          match Prng.int prng 5 with
          | 0 -> Ast.Unop (Ast.Not, gen_e (depth - 1) w)
          | 1 ->
            let ops = [| Ast.Add; Ast.Sub; Ast.And; Ast.Or; Ast.Xor |] in
            Ast.Binop (Prng.pick prng ops, gen_e (depth - 1) w, gen_e (depth - 1) w)
          | 2 when w = 1 ->
            let ops = [| Ast.Eq; Ast.Neq; Ast.Lt; Ast.Ge |] in
            Ast.Binop (Prng.pick prng ops, gen_e (depth - 1) 3, gen_e (depth - 1) 3)
          | _ -> gen_e 0 w
      in
      let targets = [| ("y", 3); ("z", 1); ("r", 3); ("v", 3) |] in
      let rec gen_stmt depth =
        match if depth = 0 then 0 else Prng.int prng 4 with
        | 0 | 1 ->
          let name, w = Prng.pick prng targets in
          Ast.Assign (name, gen_e 2 w)
        | 2 ->
          Ast.If
            ( gen_e 2 1,
              List.init (1 + Prng.int prng 2) (fun _ -> gen_stmt (depth - 1)),
              if Prng.bool prng then [ gen_stmt (depth - 1) ] else [] )
        | _ ->
          let n_arms = 1 + Prng.int prng 3 in
          let choices = Prng.sample_without_replacement prng n_arms [| 0; 1; 2; 3; 4; 5; 6; 7 |] in
          Ast.Case
            ( gen_e 1 3,
              List.map
                (fun c -> ([ Ast.lit ~width:3 c ], [ gen_stmt (depth - 1) ]))
                (Array.to_list choices),
              Some [ gen_stmt (depth - 1) ] )
      in
      let body = List.init (2 + Prng.int prng 3) (fun _ -> gen_stmt 2) in
      let d = Check.elaborate { Ast.name = "fuzz"; decls; body } in
      let _, mapping = Flow.synthesize_mapped d in
      let sim = Bitsim.create (Mapping.netlist mapping) in
      Bitsim.reset sim;
      let seq = Stimuli.random_sequence prng d 16 in
      let hdl = Sim.run d seq in
      List.for_all2
        (fun stim expected ->
          let words = Bitsim.step sim (Mapping.pack_stimulus mapping stim) in
          Sim.outputs_equal (Mapping.unpack_outputs mapping words ~lane:0) expected)
        seq hdl)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ( "synth.wordlib",
      [
        Alcotest.test_case "add exhaustive" `Quick test_wordlib_add_exhaustive;
        Alcotest.test_case "sub exhaustive" `Quick test_wordlib_sub_exhaustive;
        Alcotest.test_case "lt exhaustive" `Quick test_wordlib_lt_exhaustive;
        Alcotest.test_case "eq exhaustive" `Quick test_wordlib_eq_exhaustive;
        Alcotest.test_case "le/ge/gt" `Quick test_wordlib_le_ge_gt;
        Alcotest.test_case "logic" `Quick test_wordlib_logic;
        Alcotest.test_case "resize" `Quick test_wordlib_resize;
      ] );
    ( "synth.lower",
      [
        Alcotest.test_case "counter structure" `Quick test_lower_counter_structure;
        Alcotest.test_case "rejects unelaborated" `Quick test_lower_rejects_unelaborated;
        Alcotest.test_case "sweep removes dead" `Quick test_sweep_removes_dead_logic;
        Alcotest.test_case "sweep preserves interface" `Quick test_sweep_preserves_interface_order;
        Alcotest.test_case "bit names" `Quick test_bit_name;
      ] );
    ( "synth.equivalence",
      [
        Alcotest.test_case "counter" `Quick test_equiv_counter;
        Alcotest.test_case "alu" `Quick test_equiv_alu;
        Alcotest.test_case "fsm" `Quick test_equiv_fsm;
        Alcotest.test_case "alu exhaustive" `Quick test_equiv_alu_exhaustive;
        Alcotest.test_case "mapping missing input" `Quick test_mapping_missing_input;
        q prop_random_expr_designs;
        q prop_random_stmt_designs;
      ] );
  ]
