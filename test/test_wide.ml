(* Wide-pattern kernel tests: Packvec unit coverage, differential
   properties of the word-parallel fault-simulation engines against the
   serial single-lane reference, and the >62-input end-to-end
   regression on the registered wide128 circuit. *)

module Packvec = Mutsamp_util.Packvec
module Prng = Mutsamp_util.Prng
module Netlist = Mutsamp_netlist.Netlist
module Bitsim = Mutsamp_netlist.Bitsim
module B = Netlist.Builder
module Fault = Mutsamp_fault.Fault
module Fsim = Mutsamp_fault.Fsim
module Pattern = Mutsamp_fault.Pattern
module Registry = Mutsamp_circuits.Registry
module Flow = Mutsamp_synth.Flow
module Prpg = Mutsamp_atpg.Prpg

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Packvec units                                                      *)
(* ------------------------------------------------------------------ *)

let test_packvec_layout () =
  check_int "word_bits" 63 Packvec.word_bits;
  check_int "one word" 1 (Packvec.words_for 63);
  check_int "two words" 2 (Packvec.words_for 64);
  check_int "three words" 3 (Packvec.words_for 128);
  check_int "full mask" (-1) (Packvec.last_mask 126);
  check_int "partial mask" 0b11 (Packvec.last_mask 65)

let test_packvec_get_set () =
  let v = Packvec.create 128 in
  check_bool "starts zero" true (Packvec.is_zero v);
  Packvec.set v 0 true;
  Packvec.set v 62 true;
  Packvec.set v 63 true;
  Packvec.set v 127 true;
  check_bool "bit 0" true (Packvec.get v 0);
  check_bool "bit 62" true (Packvec.get v 62);
  check_bool "bit 63 crosses word" true (Packvec.get v 63);
  check_bool "bit 127" true (Packvec.get v 127);
  check_bool "bit 64 clear" false (Packvec.get v 64);
  check_int "popcount" 4 (Packvec.popcount v);
  Packvec.set v 63 false;
  check_int "popcount after clear" 3 (Packvec.popcount v);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Packvec.get: index 128 out of range 0..127") (fun () ->
      ignore (Packvec.get v 128))

let test_packvec_code_roundtrip () =
  let v = Packvec.of_code ~width:40 0b1011001 in
  check_int "roundtrip" 0b1011001 (Packvec.to_code v);
  let w = Packvec.of_code ~width:70 0b1011001 in
  check_bool "bit 0" true (Packvec.get w 0);
  check_bool "bit 6" true (Packvec.get w 6);
  check_bool "high bits zero" false (Packvec.get w 69);
  Alcotest.check_raises "to_code wide"
    (Invalid_argument "Packvec.to_code: width exceeds 62-bit integer codes")
    (fun () ->
      let wide = Packvec.init 70 (fun i -> i = 69) in
      ignore (Packvec.to_code wide))

let test_packvec_first_diff () =
  let a = Packvec.init 130 (fun i -> i mod 3 = 0) in
  let b = Packvec.copy a in
  check_bool "equal copies" true (Packvec.equal a b);
  Alcotest.(check (option int)) "no diff" None (Packvec.first_diff a b);
  Packvec.set b 100 (not (Packvec.get b 100));
  Packvec.set b 129 (not (Packvec.get b 129));
  Alcotest.(check (option int)) "first diff" (Some 100) (Packvec.first_diff a b);
  check_bool "not equal" false (Packvec.equal a b)

let test_packvec_invariant_under_ops () =
  (* Unused high bits of the last word stay zero through the word-level
     logic ops, so popcount/equal never see garbage lanes. *)
  let prng = Prng.create 42 in
  for width = 60 to 70 do
    let a = Packvec.random prng width in
    let b = Packvec.random prng width in
    let dst = Packvec.create width in
    let mask = Packvec.last_mask width in
    let last v = (Packvec.words v).(Packvec.num_words v - 1) in
    Packvec.lognot_into a ~into:dst;
    check_int "lognot masked" (last dst) (last dst land mask);
    Packvec.logor_into a b ~into:dst;
    check_int "logor masked" (last dst) (last dst land mask);
    check_int "popcount bound" (Packvec.popcount dst)
      (min (Packvec.popcount dst) width)
  done

let test_packvec_first_set () =
  Alcotest.(check (option int)) "zero" None
    (Packvec.first_set (Packvec.create 200));
  Alcotest.(check (option int)) "high bit" (Some 150)
    (Packvec.first_set (Packvec.init 200 (fun i -> i >= 150)))

(* ------------------------------------------------------------------ *)
(* Differential properties: wide engines vs serial reference          *)
(* ------------------------------------------------------------------ *)

(* Random small netlists, optionally sequential: a few inputs, a pile
   of random gates, random outputs. *)
let random_netlist ~dffs seed =
  let prng = Prng.create seed in
  let b = B.create (Printf.sprintf "rand%d" seed) in
  let n_inputs = 2 + Prng.int prng 3 in
  let pool =
    ref (List.init n_inputs (fun k -> B.input b (Printf.sprintf "i%d" k)))
  in
  let qs =
    if not dffs then []
    else
      List.init
        (1 + Prng.int prng 2)
        (fun _ ->
          let q = B.dff b ~init:(Prng.bool prng) in
          pool := q :: !pool;
          q)
  in
  let pick () = Prng.pick_list prng !pool in
  for _ = 1 to 6 + Prng.int prng 12 do
    let x = pick () and y = pick () in
    let g =
      match Prng.int prng 7 with
      | 0 -> B.and_ b x y
      | 1 -> B.or_ b x y
      | 2 -> B.xor_ b x y
      | 3 -> B.nand_ b x y
      | 4 -> B.nor_ b x y
      | 5 -> B.xnor_ b x y
      | _ -> B.not_ b x
    in
    pool := g :: !pool
  done;
  List.iter (fun q -> B.connect_dff b q ~d:(pick ())) qs;
  let n_outputs = 1 + Prng.int prng 3 in
  for k = 0 to n_outputs - 1 do
    B.output b (Printf.sprintf "o%d" k) (pick ())
  done;
  B.finalize b

let random_sequence nl ~length seed =
  let prng = Prng.create seed in
  let n_in = Array.length nl.Netlist.input_nets in
  Array.init length (fun _ -> Packvec.random prng n_in)

let same_report (a : Fsim.report) (b : Fsim.report) =
  a.Fsim.total = b.Fsim.total
  && a.Fsim.detected = b.Fsim.detected
  && a.Fsim.patterns_applied = b.Fsim.patterns_applied
  && Array.for_all2
       (fun (da : Fsim.detection) (db : Fsim.detection) ->
         da.Fsim.fault = db.Fsim.fault
         && da.Fsim.detected_at = db.Fsim.detected_at)
       a.Fsim.detections b.Fsim.detections

(* Wide combinational engine (multi-word lane batches) must reproduce
   the serial reference exactly, including first-detection indices. *)
let prop_combinational_matches_reference =
  QCheck.Test.make ~name:"wide combinational = serial reference" ~count:60
    (QCheck.make QCheck.Gen.(int_range 0 1000000))
    (fun seed ->
      let nl = random_netlist ~dffs:false seed in
      let faults = Fault.full_list nl in
      let patterns = random_sequence nl ~length:(40 + (seed mod 100)) seed in
      let reference = Fsim.run ~engine:Fsim.Serial nl ~faults ~sequence:patterns in
      let wide = Fsim.run ~engine:Fsim.Packed nl ~faults ~sequence:patterns in
      let wider =
        Fsim.run ~engine:Fsim.Packed ~lanes:126 nl ~faults ~sequence:patterns
      in
      same_report reference wide && same_report reference wider)

(* Parallel-fault engine with multi-word lanes on sequential machines. *)
let prop_parallel_fault_matches_reference =
  QCheck.Test.make ~name:"wide parallel-fault = serial reference" ~count:40
    (QCheck.make QCheck.Gen.(int_range 0 1000000))
    (fun seed ->
      let nl = random_netlist ~dffs:true seed in
      let faults = Fault.full_list nl in
      let sequence = random_sequence nl ~length:(8 + (seed mod 16)) seed in
      let reference = Fsim.run ~engine:Fsim.Serial nl ~faults ~sequence in
      let wide = Fsim.run ~engine:Fsim.Packed nl ~faults ~sequence in
      let wider = Fsim.run ~engine:Fsim.Packed ~lanes:189 nl ~faults ~sequence in
      same_report reference wide && same_report reference wider)

(* ------------------------------------------------------------------ *)
(* >62-input end-to-end regression                                    *)
(* ------------------------------------------------------------------ *)

let wide128_netlist () =
  match Registry.find "wide128" with
  | None -> Alcotest.fail "wide128 not registered"
  | Some e -> Flow.synthesize (e.Registry.design ())

let test_wide128_registered () =
  let nl = wide128_netlist () in
  check_int "128 inputs" 128 (Array.length nl.Netlist.input_nets);
  check_int "2 outputs" 2 (Array.length nl.Netlist.output_list);
  check_int "combinational" 0 (Array.length nl.Netlist.dff_nets)

let test_wide128_fault_coverage () =
  let nl = wide128_netlist () in
  let faults = Fault.full_list nl in
  let patterns = Prpg.uniform_sequence (Prng.create 11) ~bits:128 ~length:64 in
  let r = Fsim.run nl ~faults ~sequence:patterns in
  check_bool "patterns are wide" true (Pattern.width patterns.(0) = 128);
  check_bool "nonzero coverage" true (r.Fsim.detected > 0);
  (* The parity chain makes most faults randomly testable; 64 random
     vectors reliably clear half the list by a wide margin. *)
  check_bool "substantial coverage" true
    (Fsim.coverage_percent r > 50.);
  check_bool "coverage curve monotone" true
    (let c = Fsim.coverage_curve r in
     List.for_all2
       (fun (_, a) (_, b) -> a <= b +. 1e-9)
       (List.filteri (fun i _ -> i < List.length c - 1) c)
       (List.tl c))

let test_wide128_differential_sample () =
  (* Exact agreement with the serial reference on a fault sample, so the
     >62-input path is covered by the differential property too. *)
  let nl = wide128_netlist () in
  let faults =
    List.filteri (fun i _ -> i mod 23 = 0) (Fault.full_list nl)
  in
  let patterns = Prpg.uniform_sequence (Prng.create 3) ~bits:128 ~length:16 in
  let reference = Fsim.run ~engine:Fsim.Serial nl ~faults ~sequence:patterns in
  let wide = Fsim.run nl ~faults ~sequence:patterns in
  check_bool "sampled faults agree" true (same_report reference wide)

let suite =
  [
    ( "wide.packvec",
      [
        Alcotest.test_case "word layout" `Quick test_packvec_layout;
        Alcotest.test_case "get/set across words" `Quick test_packvec_get_set;
        Alcotest.test_case "code roundtrip" `Quick test_packvec_code_roundtrip;
        Alcotest.test_case "first_diff" `Quick test_packvec_first_diff;
        Alcotest.test_case "last-word invariant" `Quick
          test_packvec_invariant_under_ops;
        Alcotest.test_case "first_set" `Quick test_packvec_first_set;
      ] );
    ( "wide.differential",
      [
        QCheck_alcotest.to_alcotest prop_combinational_matches_reference;
        QCheck_alcotest.to_alcotest prop_parallel_fault_matches_reference;
      ] );
    ( "wide.end_to_end",
      [
        Alcotest.test_case "wide128 registered" `Quick test_wide128_registered;
        Alcotest.test_case "wide128 coverage" `Quick
          test_wide128_fault_coverage;
        Alcotest.test_case "wide128 differential sample" `Quick
          test_wide128_differential_sample;
      ] );
  ]
