(* Tests for lib/robust and its integration across the pipeline:
   budgets, typed errors, chaos injection and containment, graceful
   degradation and atomic artifact writes. The
   invariant under test throughout: every stage either succeeds,
   degrades with a recorded downgrade, or returns a typed error — an
   armed injection point never escapes as an uncaught exception. *)

module Budget = Mutsamp_robust.Budget
module Rerror = Mutsamp_robust.Error
module Chaos = Mutsamp_robust.Chaos
module Degrade = Mutsamp_robust.Degrade
module Atomicio = Mutsamp_robust.Atomicio
module Json = Mutsamp_obs.Json
module Metrics = Mutsamp_obs.Metrics
module Runreport = Mutsamp_obs.Runreport
module Cnf = Mutsamp_sat.Cnf
module Solver = Mutsamp_sat.Solver
module Podem = Mutsamp_atpg.Podem
module Topoff = Mutsamp_atpg.Topoff
module Collapse = Mutsamp_fault.Collapse
module Fsim = Mutsamp_fault.Fsim
module Prpg = Mutsamp_atpg.Prpg
module Prng = Mutsamp_util.Prng
module Benchfmt = Mutsamp_netlist.Benchfmt
module Parser = Mutsamp_hdl.Parser
module Flow = Mutsamp_synth.Flow
module Registry = Mutsamp_circuits.Registry

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* Chaos armings and the degradation record are process-global; every
   test starts clean and leaves nothing armed for the rest of the
   suite. *)
let clean f () =
  Chaos.disarm_all ();
  Chaos.init ~seed:2005 ();
  Degrade.reset ();
  Budget.set_ambient Budget.unlimited;
  Fun.protect
    ~finally:(fun () ->
      Chaos.disarm_all ();
      Degrade.reset ();
      Budget.set_ambient Budget.unlimited)
    f

let circuit name =
  match Registry.find name with
  | Some e -> Flow.synthesize (e.Registry.design ())
  | None -> Alcotest.failf "circuit %s not in registry" name

(* ------------------------------------------------------------------ *)
(* Budget                                                             *)
(* ------------------------------------------------------------------ *)

let test_budget_unlimited () =
  check_bool "unlimited" true (Budget.is_unlimited Budget.unlimited);
  (match Budget.spend Budget.unlimited ~stage:Rerror.Sat Budget.Sat_conflicts 1_000_000 with
   | Ok () -> ()
   | Error _ -> Alcotest.fail "unlimited budget exhausted");
  check_int "remaining is max_int" max_int
    (Budget.remaining Budget.unlimited Budget.Sat_conflicts)

let test_budget_quota () =
  let b = Budget.create ~sat_conflicts:10 () in
  check_bool "not unlimited" false (Budget.is_unlimited b);
  (match Budget.spend b ~stage:Rerror.Sat Budget.Sat_conflicts 7 with
   | Ok () -> ()
   | Error _ -> Alcotest.fail "spend within quota failed");
  check_int "remaining after spend" 3 (Budget.remaining b Budget.Sat_conflicts);
  (match Budget.spend b ~stage:Rerror.Sat Budget.Sat_conflicts 4 with
   | Error (Rerror.Budget_exhausted { stage = Rerror.Sat; resource }) ->
     check_string "resource name" "sat_conflicts" resource
   | Error e -> Alcotest.failf "wrong error: %s" (Rerror.to_string e)
   | Ok () -> Alcotest.fail "overdraw succeeded");
  (* The failing spend must not go negative. *)
  check_int "remaining unchanged after failed spend" 3
    (Budget.remaining b Budget.Sat_conflicts);
  (* Other resources stay unlimited. *)
  (match Budget.spend b ~stage:Rerror.Podem Budget.Podem_backtracks 1_000_000 with
   | Ok () -> ()
   | Error _ -> Alcotest.fail "unrelated resource exhausted")

let test_budget_deadline () =
  let b = Budget.create ~deadline_ms:1 () in
  Unix.sleepf 0.01;
  (match Budget.check_deadline b ~stage:Rerror.Topoff with
   | Error (Rerror.Timeout Rerror.Topoff) -> ()
   | Error e -> Alcotest.failf "wrong error: %s" (Rerror.to_string e)
   | Ok () -> Alcotest.fail "deadline not detected");
  (* A far deadline passes. *)
  match Budget.check_deadline (Budget.create ~deadline_ms:60_000 ()) ~stage:Rerror.Topoff with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "future deadline reported expired"

let test_budget_json () =
  (match Budget.to_json Budget.unlimited with
   | Json.Obj fields ->
     List.iter
       (fun (k, v) -> check_bool (k ^ " null when unlimited") true (v = Json.Null))
       fields
   | _ -> Alcotest.fail "budget json not an object");
  match Budget.to_json (Budget.create ~deadline_ms:500 ~sat_conflicts:9 ()) with
  | Json.Obj fields ->
    check_bool "deadline rendered" true
      (List.assoc_opt "deadline_ms" fields = Some (Json.Int 500));
    check_bool "quota rendered" true
      (List.assoc_opt "sat_conflicts_remaining" fields = Some (Json.Int 9))
  | _ -> Alcotest.fail "budget json not an object"

let test_ambient_budget () =
  let b = Budget.create ~sat_conflicts:5 () in
  Budget.set_ambient b;
  check_bool "ambient returns the installed budget" true (Budget.ambient () == b);
  Budget.set_ambient Budget.unlimited;
  check_bool "ambient restored" true (Budget.is_unlimited (Budget.ambient ()))

let test_exit_codes_distinct () =
  let errors =
    [
      Rerror.Timeout Rerror.Sat;
      Rerror.Budget_exhausted { stage = Rerror.Sat; resource = "sat_conflicts" };
      Rerror.Parse_error { loc = { Rerror.file = None; line = None }; msg = "x" };
      Rerror.Aborted Rerror.Podem;
      Rerror.Injected Rerror.Pipeline;
      Rerror.Io_error "x";
    ]
  in
  let codes = List.map Rerror.exit_code errors in
  check_int "six distinct nonzero codes" 6
    (List.length (List.sort_uniq compare codes));
  List.iter (fun c -> check_bool "nonzero" true (c <> 0)) codes;
  (* Every class renders to a non-empty one-liner. *)
  List.iter
    (fun e ->
      let s = Rerror.to_string e in
      check_bool "non-empty message" true (String.length s > 0);
      check_bool "one line" true (not (String.contains s '\n')))
    errors

(* ------------------------------------------------------------------ *)
(* Budgets inside the engines                                         *)
(* ------------------------------------------------------------------ *)

(* Two-variable UNSAT core: refuting it forces conflicts, so a
   zero-conflict budget must trip. *)
let unsat_cnf () =
  let cnf = Cnf.create () in
  let a = Cnf.new_var cnf and b = Cnf.new_var cnf in
  Cnf.add_clause cnf [ a; b ];
  Cnf.add_clause cnf [ a; Cnf.neg b ];
  Cnf.add_clause cnf [ Cnf.neg a; b ];
  Cnf.add_clause cnf [ Cnf.neg a; Cnf.neg b ];
  cnf

let test_solver_budget () =
  (match Solver.solve ~budget:Budget.unlimited (unsat_cnf ()) with
   | Ok Solver.Unsat -> ()
   | Ok (Solver.Sat _) -> Alcotest.fail "unsat core declared sat"
   | Error e -> Alcotest.failf "unlimited solve errored: %s" (Rerror.to_string e));
  match Solver.solve ~budget:(Budget.create ~sat_conflicts:0 ()) (unsat_cnf ()) with
  | Error (Rerror.Budget_exhausted { stage = Rerror.Sat; _ }) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Rerror.to_string e)
  | Ok _ -> Alcotest.fail "zero-conflict budget not enforced"

let test_podem_budget () =
  (* c499's XOR trees force PODEM to backtrack; with a zero-backtrack
     budget at least one fault must report exhaustion — and never a
     spurious untestability proof. *)
  let nl = circuit "c499" in
  let faults = (Collapse.run nl).Collapse.representatives in
  let budget_errors = ref 0 in
  List.iter
    (fun f ->
      let b = Budget.create ~podem_backtracks:0 () in
      match Podem.find_test ~budget:b nl f with
      | Ok (Some _, _) -> ()
      | Ok (None, _) -> Alcotest.fail "untestability 'proved' under a zero budget"
      | Error (Rerror.Budget_exhausted { stage = Rerror.Podem; _ }) ->
        incr budget_errors
      | Error (Rerror.Aborted Rerror.Podem) -> ()
      | Error e -> Alcotest.failf "unexpected error: %s" (Rerror.to_string e))
    faults;
  check_bool "some fault needed backtracks" true (!budget_errors > 0)

let test_fsim_budget_degrades () =
  Degrade.reset ();
  let nl = circuit "c432" in
  let faults = (Collapse.run nl).Collapse.representatives in
  let bits = Array.length nl.Mutsamp_netlist.Netlist.input_nets in
  let patterns = Prpg.uniform_sequence (Prng.create 7) ~bits ~length:64 in
  let ctx_with b = { Mutsamp_exec.Ctx.default with budget = Some b } in
  let full =
    Fsim.run ~ctx:(ctx_with Budget.unlimited) nl ~faults ~sequence:patterns
  in
  (* A one-pair budget stops the run almost immediately: the report is
     partial (never over-reports) and the cut is on record. *)
  let cut =
    Fsim.run
      ~ctx:(ctx_with (Budget.create ~fsim_pairs:1 ()))
      nl ~faults ~sequence:patterns
  in
  check_int "fault universe unchanged" full.Fsim.total cut.Fsim.total;
  check_bool "partial detection" true (cut.Fsim.detected < full.Fsim.detected);
  check_bool "degradation recorded" true
    (List.mem "fsim" (Degrade.degraded_stages ()))

(* ------------------------------------------------------------------ *)
(* Chaos: injection and containment                                   *)
(* ------------------------------------------------------------------ *)

let test_chaos_timeout_contained () =
  Chaos.arm Chaos.Sat_solve Chaos.Timeout;
  match Solver.solve (unsat_cnf ()) with
  | Error (Rerror.Timeout Rerror.Sat) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Rerror.to_string e)
  | Ok _ -> Alcotest.fail "armed timeout did not fire"

let test_chaos_exception_contained () =
  Chaos.arm Chaos.Sat_solve Chaos.Exception;
  match Solver.solve (unsat_cnf ()) with
  | Error (Rerror.Injected Rerror.Sat) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Rerror.to_string e)
  | Ok _ -> Alcotest.fail "armed exception did not fire"

let test_chaos_after_count () =
  Chaos.arm ~after:2 Chaos.Sat_solve Chaos.Timeout;
  check_bool "first hit passes" true (Chaos.fire Chaos.Sat_solve = None);
  check_bool "second hit passes" true (Chaos.fire Chaos.Sat_solve = None);
  check_bool "third hit fires" true (Chaos.fire Chaos.Sat_solve = Some Chaos.Timeout);
  check_bool "stays armed" true (Chaos.fire Chaos.Sat_solve = Some Chaos.Timeout)

let test_chaos_spec_parsing () =
  (match Chaos.parse_spec "sat:timeout" with
   | Ok () -> ()
   | Error msg -> Alcotest.failf "valid spec rejected: %s" msg);
  check_bool "armed by spec" true (Chaos.any_armed ());
  Chaos.disarm_all ();
  (match Chaos.parse_spec "report:truncate=16" with
   | Ok () -> ()
   | Error msg -> Alcotest.failf "valid spec rejected: %s" msg);
  (match Chaos.parse_spec "podem:exn@3" with
   | Ok () -> ()
   | Error msg -> Alcotest.failf "valid spec rejected: %s" msg);
  List.iter
    (fun bad ->
      match Chaos.parse_spec bad with
      | Ok () -> Alcotest.failf "bad spec %S accepted" bad
      | Error _ -> ())
    [ "bogus:timeout"; "sat:frobnicate"; "sat"; "sat:truncate=x"; "" ]

let test_topoff_degrades_under_chaos () =
  Degrade.reset ();
  Chaos.arm Chaos.Sat_solve Chaos.Timeout;
  let nl = circuit "c432" in
  let faults = (Collapse.run nl).Collapse.representatives in
  (* The deterministic phase dies instantly; the run must still return
     a report, fall back to random top-off and say so. *)
  let r = Topoff.run ~generator:Topoff.Use_sat ~seed:3 nl ~faults ~seed_patterns:[||] in
  check_bool "degraded flagged" true r.Topoff.degraded;
  check_bool "fallback rounds ran" true (r.Topoff.degraded_retries > 0);
  check_bool "degradation recorded" true
    (List.mem "topoff" (Degrade.degraded_stages ()));
  check_bool "retries counted" true (Degrade.retries () > 0);
  (* Every fault is accounted for. *)
  check_int "accounting" r.Topoff.total_faults
    (r.Topoff.seed_detected + r.Topoff.random_detected + r.Topoff.atpg_detected
     + r.Topoff.degraded_detected + r.Topoff.untestable + r.Topoff.aborted)

let test_topoff_default_budget_unchanged () =
  (* Same seed, no chaos, unlimited budget: the degradation machinery
     must be invisible. *)
  let nl = circuit "c17" in
  let faults = (Collapse.run nl).Collapse.representatives in
  let r = Topoff.run ~seed:3 nl ~faults ~seed_patterns:[||] in
  check_bool "not degraded" false r.Topoff.degraded;
  check_int "no fallback rounds" 0 r.Topoff.degraded_retries;
  check_bool "nothing recorded" false (Degrade.any ())

(* ------------------------------------------------------------------ *)
(* Parsers: typed results, no escaping exceptions                     *)
(* ------------------------------------------------------------------ *)

let test_benchfmt_typed_errors () =
  (match Benchfmt.parse ~file:"x.bench" "G1 = FROB(G2)\n" with
   | Error (Rerror.Parse_error { loc; _ }) ->
     check_bool "file recorded" true (loc.Rerror.file = Some "x.bench")
   | Error e -> Alcotest.failf "wrong error: %s" (Rerror.to_string e)
   | Ok _ -> Alcotest.fail "garbage accepted");
  (* Line numbers survive into the location. *)
  (match Benchfmt.parse "INPUT(a)\nnonsense\n" with
   | Error (Rerror.Parse_error { loc; _ }) ->
     check_bool "line recovered" true (loc.Rerror.line = Some 2)
   | _ -> Alcotest.fail "expected a located parse error");
  (* Combinational cycles are a parse error, not a stack overflow. *)
  (match Benchfmt.parse "INPUT(b)\nOUTPUT(a)\na = AND(a, b)\n" with
   | Error (Rerror.Parse_error _) -> ()
   | Error e -> Alcotest.failf "wrong error: %s" (Rerror.to_string e)
   | Ok _ -> Alcotest.fail "cyclic netlist accepted");
  (* A valid netlist still parses. *)
  match Benchfmt.parse (Benchfmt.to_string (circuit "c17")) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "valid netlist rejected: %s" (Rerror.to_string e)

let test_benchfmt_missing_file () =
  match Benchfmt.read_file_result "/nonexistent/definitely/missing.bench" with
  | Error (Rerror.Io_error _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Rerror.to_string e)
  | Ok _ -> Alcotest.fail "missing file read"

let test_hdl_typed_errors () =
  (match Parser.design_result "design d is begin x := end design;" with
   | Error (Rerror.Parse_error { loc; _ }) ->
     check_bool "line recovered" true (loc.Rerror.line <> None)
   | Error e -> Alcotest.failf "wrong error: %s" (Rerror.to_string e)
   | Ok _ -> Alcotest.fail "garbage accepted");
  (* Lexer failures take the same typed path — including the numeric
     overflow that used to raise [Failure]. *)
  (match Parser.design_result "design d is var x : bit; begin x := 99999999999999999999999; end design;" with
   | Error (Rerror.Parse_error _) -> ()
   | Error e -> Alcotest.failf "wrong error: %s" (Rerror.to_string e)
   | Ok _ -> Alcotest.fail "overflowing literal accepted");
  match Parser.design_result "design d is input a : bit; output y : bit; begin y := not a; end design;" with
  | Ok d -> check_string "design parsed" "d" d.Mutsamp_hdl.Ast.name
  | Error e -> Alcotest.failf "valid design rejected: %s" (Rerror.to_string e)

let test_chaos_parse_point () =
  Chaos.arm Chaos.Parse_input Chaos.Exception;
  (match Benchfmt.parse "INPUT(a)\nOUTPUT(a)\n" with
   | Error (Rerror.Injected Rerror.Parse) -> ()
   | _ -> Alcotest.fail "injected parse failure not contained");
  match Parser.design_result "design d is begin null; end design;" with
  | Error (Rerror.Injected Rerror.Parse) -> ()
  | _ -> Alcotest.fail "injected parse failure not contained (hdl)"

(* Fuzz: arbitrary bytes — random garbage and corrupted/truncated valid
   sources — must yield Ok or a typed Error, never an exception. QCheck
   reports any escaping exception as a failure. *)
let fuzz_tests =
  let bench_src = Benchfmt.to_string (circuit "c17") in
  let hdl_src =
    "design d is input a : bit; input b : bit; output y : bit; begin y := a and b; end design;"
  in
  let corrupt src (cut, flip_at, flip_to) =
    let cut = cut mod (String.length src + 1) in
    let s = Bytes.of_string (String.sub src 0 cut) in
    if Bytes.length s > 0 then
      Bytes.set s (flip_at mod Bytes.length s) (Char.chr (flip_to land 0xff));
    Bytes.to_string s
  in
  let gen = QCheck.Gen.(triple small_nat small_nat (int_bound 255)) in
  [
    QCheck.Test.make ~name:"Benchfmt.parse total on random bytes" ~count:200
      (QCheck.make QCheck.Gen.(string_size (int_bound 120)))
      (fun s ->
        (match Benchfmt.parse s with Ok _ | Error _ -> ());
        true);
    QCheck.Test.make ~name:"Benchfmt.parse total on corrupted .bench" ~count:200
      (QCheck.make gen)
      (fun c ->
        (match Benchfmt.parse (corrupt bench_src c) with Ok _ | Error _ -> ());
        true);
    QCheck.Test.make ~name:"Parser.design_result total on random bytes" ~count:200
      (QCheck.make QCheck.Gen.(string_size (int_bound 120)))
      (fun s ->
        (match Parser.design_result s with Ok _ | Error _ -> ());
        true);
    QCheck.Test.make ~name:"Parser.design_result total on corrupted source"
      ~count:200 (QCheck.make gen)
      (fun c ->
        (match Parser.design_result (corrupt hdl_src c) with Ok _ | Error _ -> ());
        true);
  ]

(* ------------------------------------------------------------------ *)
(* Atomic writes                                                      *)
(* ------------------------------------------------------------------ *)

let temp_path () =
  let path = Filename.temp_file "mutsamp_robust" ".json" in
  path

let test_atomic_write () =
  let path = temp_path () in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  (match Atomicio.write_file path "first version" with
   | Ok () -> ()
   | Error e -> Alcotest.failf "write failed: %s" (Rerror.to_string e));
  (* An injected truncation fails the write and leaves the previous
     contents (and no temp litter) behind. *)
  Chaos.arm Chaos.Report_write (Chaos.Truncate 4);
  (match Atomicio.write_file path "second version, much longer" with
   | Error (Rerror.Io_error _) -> ()
   | Error e -> Alcotest.failf "wrong error: %s" (Rerror.to_string e)
   | Ok () -> Alcotest.fail "truncated write reported success");
  let ic = open_in_bin path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  check_string "original intact" "first version" contents;
  let dir = Filename.dirname path and base = Filename.basename path in
  Array.iter
    (fun f ->
      check_bool "no temp litter" false
        (String.length f > String.length base
         && String.sub f 0 (String.length base) = base))
    (Sys.readdir dir);
  (* Disarmed, the replacement goes through. *)
  Chaos.disarm_all ();
  (match Atomicio.write_file path "second version" with
   | Ok () -> ()
   | Error e -> Alcotest.failf "write failed: %s" (Rerror.to_string e));
  let ic = open_in_bin path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  check_string "replaced" "second version" contents

(* Fuzz: an interrupted write — truncated after an arbitrary byte
   count, or killed by an injected exception — must never corrupt the
   destination (the previous contents stay readable, byte for byte) and
   must never leave temp litter in the directory. A retry after the
   fault clears must fully replace the file. *)
let atomicio_fuzz_tests =
  let read_all path =
    let ic = open_in_bin path in
    Fun.protect ~finally:(fun () -> close_in ic)
    @@ fun () -> really_input_string ic (in_channel_length ic)
  in
  let tmp_litter path =
    let dir = Filename.dirname path and base = Filename.basename path in
    Array.exists
      (fun f ->
        String.length f > String.length base
        && String.sub f 0 (String.length base) = base)
      (Sys.readdir dir)
  in
  let with_seeded_file old_contents f =
    let path = Filename.temp_file "mutsamp_atomicio" ".json" in
    Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    @@ fun () ->
    (match Atomicio.write_file path old_contents with
     | Ok () -> ()
     | Error e -> Alcotest.failf "seed write failed: %s" (Rerror.to_string e));
    f path
  in
  let gen =
    QCheck.Gen.(
      triple (string_size (int_bound 80)) (string_size (int_bound 80)) small_nat)
  in
  [
    QCheck.Test.make ~count:100
      ~name:"Atomicio: torn write leaves old contents and no litter"
      (QCheck.make gen)
      (fun (old_c, new_c, cut) ->
        with_seeded_file old_c @@ fun path ->
        Chaos.disarm_all ();
        Chaos.arm Chaos.Report_write (Chaos.Truncate cut);
        let r = Atomicio.write_file path new_c in
        Chaos.disarm_all ();
        (match r with
         | Error (Rerror.Io_error _) -> ()
         | Error e -> Alcotest.failf "wrong error: %s" (Rerror.to_string e)
         | Ok () -> Alcotest.fail "torn write reported success");
        read_all path = old_c && not (tmp_litter path));
    QCheck.Test.make ~count:100
      ~name:"Atomicio: injected exception leaves destination intact"
      (QCheck.make gen)
      (fun (old_c, new_c, _) ->
        with_seeded_file old_c @@ fun path ->
        Chaos.disarm_all ();
        Chaos.arm Chaos.Report_write Chaos.Exception;
        let raised =
          try
            ignore (Atomicio.write_file path new_c);
            false
          with Chaos.Injected _ -> true
        in
        Chaos.disarm_all ();
        raised && read_all path = old_c && not (tmp_litter path));
    QCheck.Test.make ~count:100
      ~name:"Atomicio: retry after a torn write converges"
      (QCheck.make gen)
      (fun (old_c, new_c, cut) ->
        with_seeded_file old_c @@ fun path ->
        Chaos.disarm_all ();
        Chaos.arm Chaos.Report_write (Chaos.Truncate cut);
        (match Atomicio.write_file path new_c with Ok () | Error _ -> ());
        Chaos.disarm_all ();
        (match Atomicio.write_file path new_c with
         | Ok () -> ()
         | Error e -> Alcotest.failf "retry failed: %s" (Rerror.to_string e));
        read_all path = new_c && not (tmp_litter path));
  ]

(* ------------------------------------------------------------------ *)
(* Run reports under degradation                                      *)
(* ------------------------------------------------------------------ *)

let test_degraded_report_validates () =
  Degrade.reset ();
  Degrade.note ~stage:Rerror.Topoff ~detail:"random fallback"
    (Rerror.Timeout Rerror.Sat);
  Degrade.retry ~stage:Rerror.Topoff;
  let budget = Budget.create ~deadline_ms:100 ~sat_conflicts:50 () in
  let robust =
    match Degrade.to_json () with
    | Json.Obj fields -> Json.Obj (fields @ [ ("budget", Budget.to_json budget) ])
    | other -> other
  in
  let report =
    Runreport.make ~command:"test" ~circuits:[ "c17" ] ~seed:7
      ~extra:[ ("robust", robust) ]
      ~spans:[] ~metrics:(Metrics.snapshot ()) ()
  in
  (match Runreport.validate report with
   | Ok () -> ()
   | Error msg -> Alcotest.failf "degraded report rejected by schema: %s" msg);
  (* The robust section carries the downgrade. *)
  match Json.member "robust" report with
  | Some robust ->
    (match Json.member "degraded_stages" robust with
     | Some (Json.List [ Json.String "topoff" ]) -> ()
     | _ -> Alcotest.fail "degraded_stages missing or wrong");
    (match Json.member "retries" robust with
     | Some (Json.Int 1) -> ()
     | _ -> Alcotest.fail "retries missing or wrong")
  | None -> Alcotest.fail "robust section missing"

let test_degrade_record () =
  Degrade.reset ();
  check_bool "clean" false (Degrade.any ());
  Degrade.note ~stage:Rerror.Fsim (Rerror.Timeout Rerror.Fsim);
  Degrade.note ~stage:Rerror.Fsim (Rerror.Timeout Rerror.Fsim);
  Degrade.note ~stage:Rerror.Kill
    (Rerror.Budget_exhausted { stage = Rerror.Kill; resource = "fsim_pairs" });
  Alcotest.(check (list string))
    "dedup in first-degradation order" [ "fsim"; "kill" ]
    (Degrade.degraded_stages ());
  check_int "all events kept" 3 (List.length (Degrade.events ()));
  Degrade.reset ();
  check_bool "reset clears" false (Degrade.any ())

(* ------------------------------------------------------------------ *)
(* Retry                                                              *)
(* ------------------------------------------------------------------ *)

module Retry = Mutsamp_robust.Retry

let no_sleep _ = ()

let test_retry_scale_schedule () =
  let p = Retry.policy ~base_scale:1 ~scale_multiplier:2.0 () in
  check_int "attempt 1" 1 (Retry.scale_at p ~attempt:1);
  check_int "attempt 2" 2 (Retry.scale_at p ~attempt:2);
  check_int "attempt 3" 4 (Retry.scale_at p ~attempt:3);
  let flat = Retry.policy ~base_scale:3 ~scale_multiplier:1.0 () in
  check_int "flat schedule" 3 (Retry.scale_at flat ~attempt:5)

let test_retry_delay_schedule () =
  let p =
    Retry.policy ~base_delay_ms:100. ~delay_multiplier:2.0 ~max_delay_ms:250.
      ~jitter:0. ()
  in
  Alcotest.(check (float 0.001)) "no delay before attempt 1" 0.
    (Retry.delay_ms_at p ~attempt:1);
  Alcotest.(check (float 0.001)) "base before attempt 2" 100.
    (Retry.delay_ms_at p ~attempt:2);
  Alcotest.(check (float 0.001)) "doubled" 200. (Retry.delay_ms_at p ~attempt:3);
  Alcotest.(check (float 0.001)) "capped" 250. (Retry.delay_ms_at p ~attempt:4);
  (* Jitter only ever shortens the delay, never lengthens it. *)
  let j = { p with Retry.jitter = 0.5 } in
  let prng = Prng.create 7 in
  for attempt = 2 to 6 do
    let d = Retry.delay_ms_at ~prng j ~attempt in
    let nominal = Retry.delay_ms_at p ~attempt in
    check_bool "jittered within [nominal/2, nominal]" true
      (d >= (nominal /. 2.) -. 0.001 && d <= nominal +. 0.001)
  done

let test_retry_succeeds_midway () =
  let calls = ref [] in
  let o =
    Retry.run ~policy:(Retry.policy ~max_attempts:5 ()) ~sleep:no_sleep
      ~stage:Rerror.Topoff
      (fun ~attempt ~scale ->
        calls := (attempt, scale) :: !calls;
        if attempt = 3 then Ok "done" else Error "not yet")
  in
  (match o.Retry.result with
   | Ok v -> check_string "value" "done" v
   | Error _ -> Alcotest.fail "expected success");
  check_int "attempts entered" 3 o.Retry.attempts;
  Alcotest.(check (list (pair int int)))
    "geometric work schedule" [ (1, 1); (2, 2); (3, 4) ] (List.rev !calls);
  (* Every attempt entered is one Degrade.retry under the stage. *)
  check_int "robust.retries" 3 (Degrade.retries ())

let test_retry_exhaustion () =
  let o =
    Retry.run ~policy:(Retry.policy ~max_attempts:3 ()) ~sleep:no_sleep
      ~stage:Rerror.Serve
      (fun ~attempt:_ ~scale:_ -> Error "still broken")
  in
  (match o.Retry.result with
   | Error (Retry.Exhausted reason) ->
     check_string "last reason" "still broken" reason
   | _ -> Alcotest.fail "expected exhaustion");
  check_int "all attempts entered" 3 o.Retry.attempts

let test_retry_budget_cut () =
  let budget = Budget.create ~deadline_ms:3_600_000 () in
  Budget.expire budget;
  let entered = ref 0 in
  let o =
    Retry.run ~policy:(Retry.policy ~max_attempts:5 ()) ~sleep:no_sleep ~budget
      ~stage:Rerror.Serve
      (fun ~attempt:_ ~scale:_ ->
        incr entered;
        Error "x")
  in
  (match o.Retry.result with
   | Error (Retry.Budget_cut (Rerror.Timeout _)) -> ()
   | _ -> Alcotest.fail "expected a budget cut");
  check_int "cut before the first attempt" 0 o.Retry.attempts;
  check_int "body never ran" 0 !entered

let test_budget_expire () =
  let b = Budget.create ~deadline_ms:3_600_000 () in
  (match Budget.check_deadline b ~stage:Rerror.Serve with
   | Ok () -> ()
   | Error _ -> Alcotest.fail "fresh deadline must pass");
  check_bool "remaining before expiry" true
    (match Budget.deadline_remaining_ms b with Some ms -> ms > 0 | None -> false);
  Budget.expire b;
  (match Budget.check_deadline b ~stage:Rerror.Serve with
   | Error (Rerror.Timeout Rerror.Serve) -> ()
   | _ -> Alcotest.fail "expired deadline must fail");
  check_int "remaining clamps at zero"
    0 (Option.value ~default:(-1) (Budget.deadline_remaining_ms b));
  (* Shards made by split share the parent's deadline cell. *)
  let parent = Budget.create ~deadline_ms:3_600_000 () in
  let shards = Budget.split parent 3 in
  Budget.expire parent;
  Array.iter
    (fun shard ->
      match Budget.check_deadline shard ~stage:Rerror.Serve with
      | Error (Rerror.Timeout _) -> ()
      | _ -> Alcotest.fail "shard must see the parent's expiry")
    shards;
  (* Expiring a derived handle never poisons the shared unlimited
     budget. *)
  Budget.expire Budget.unlimited;
  match Budget.check_deadline Budget.unlimited ~stage:Rerror.Serve with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "unlimited must be immune to expire"

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ( "robust.retry",
      [
        Alcotest.test_case "scale schedule" `Quick (clean test_retry_scale_schedule);
        Alcotest.test_case "delay schedule" `Quick (clean test_retry_delay_schedule);
        Alcotest.test_case "succeeds midway" `Quick (clean test_retry_succeeds_midway);
        Alcotest.test_case "exhaustion" `Quick (clean test_retry_exhaustion);
        Alcotest.test_case "budget cut" `Quick (clean test_retry_budget_cut);
        Alcotest.test_case "budget expire" `Quick (clean test_budget_expire);
      ] );
    ( "robust.budget",
      [
        Alcotest.test_case "unlimited budget" `Quick (clean test_budget_unlimited);
        Alcotest.test_case "quota accounting" `Quick (clean test_budget_quota);
        Alcotest.test_case "deadline" `Quick (clean test_budget_deadline);
        Alcotest.test_case "json rendering" `Quick (clean test_budget_json);
        Alcotest.test_case "ambient install" `Quick (clean test_ambient_budget);
        Alcotest.test_case "exit codes distinct" `Quick (clean test_exit_codes_distinct);
      ] );
    ( "robust.engines",
      [
        Alcotest.test_case "solver conflict budget" `Quick (clean test_solver_budget);
        Alcotest.test_case "podem backtrack budget" `Quick (clean test_podem_budget);
        Alcotest.test_case "fsim pair budget degrades" `Quick
          (clean test_fsim_budget_degrades);
      ] );
    ( "robust.chaos",
      [
        Alcotest.test_case "timeout contained" `Quick (clean test_chaos_timeout_contained);
        Alcotest.test_case "exception contained" `Quick
          (clean test_chaos_exception_contained);
        Alcotest.test_case "after count" `Quick (clean test_chaos_after_count);
        Alcotest.test_case "spec parsing" `Quick (clean test_chaos_spec_parsing);
        Alcotest.test_case "topoff degrades under chaos" `Quick
          (clean test_topoff_degrades_under_chaos);
        Alcotest.test_case "default budget unchanged" `Quick
          (clean test_topoff_default_budget_unchanged);
      ] );
    ( "robust.parsers",
      [
        Alcotest.test_case "benchfmt typed errors" `Quick (clean test_benchfmt_typed_errors);
        Alcotest.test_case "benchfmt missing file" `Quick (clean test_benchfmt_missing_file);
        Alcotest.test_case "hdl typed errors" `Quick (clean test_hdl_typed_errors);
        Alcotest.test_case "chaos parse point" `Quick (clean test_chaos_parse_point);
      ]
      @ List.map q fuzz_tests );
    ( "robust.artifacts",
      [
        Alcotest.test_case "atomic write truncation" `Quick (clean test_atomic_write);
        Alcotest.test_case "degraded report validates" `Quick
          (clean test_degraded_report_validates);
        Alcotest.test_case "degrade record" `Quick (clean test_degrade_record);
      ]
      @ List.map q atomicio_fuzz_tests );
  ]
