(* Tests for lib/netlist: builder, strash/folding, lint, topo, bitsim,
   fault injection, dot, stats. *)

module Gate = Mutsamp_netlist.Gate
module Netlist = Mutsamp_netlist.Netlist
module Topo = Mutsamp_netlist.Topo
module Bitsim = Mutsamp_netlist.Bitsim
module Dot = Mutsamp_netlist.Dot
module Stats = Mutsamp_netlist.Stats
module B = Netlist.Builder

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Full adder: s = a xor b xor cin, cout = majority. *)
let full_adder () =
  let b = B.create "fa" in
  let a = B.input b "a" and bb = B.input b "b" and cin = B.input b "cin" in
  let s = B.xor_ b (B.xor_ b a bb) cin in
  let cout = B.or_ b (B.and_ b a bb) (B.or_ b (B.and_ b a cin) (B.and_ b bb cin)) in
  B.output b "s" s;
  B.output b "cout" cout;
  B.finalize b

(* Toggle flip-flop with enable. *)
let toggle () =
  let b = B.create "toggle" in
  let en = B.input b "en" in
  let q = B.dff b ~init:false in
  let d = B.xor_ b q en in
  B.connect_dff b q ~d;
  B.output b "q" q;
  B.finalize b

(* ------------------------------------------------------------------ *)
(* Builder                                                            *)
(* ------------------------------------------------------------------ *)

let test_builder_strash_shares () =
  let b = B.create "t" in
  let x = B.input b "x" and y = B.input b "y" in
  let g1 = B.and_ b x y in
  let g2 = B.and_ b y x in
  check_int "commutative sharing" g1 g2;
  let g3 = B.xor_ b x y and g4 = B.xor_ b x y in
  check_int "identical sharing" g3 g4

let test_builder_const_folding () =
  let b = B.create "t" in
  let x = B.input b "x" in
  let zero = B.const b false and one = B.const b true in
  check_int "and(x,0)=0" zero (B.and_ b x zero);
  check_int "and(x,1)=x" x (B.and_ b x one);
  check_int "or(x,1)=1" one (B.or_ b x one);
  check_int "or(x,0)=x" x (B.or_ b x zero);
  check_int "xor(x,0)=x" x (B.xor_ b x zero);
  check_int "xor(x,x)=0" zero (B.xor_ b x x);
  check_int "and(x,x)=x" x (B.and_ b x x);
  check_int "not(not x)=x" x (B.not_ b (B.not_ b x));
  check_int "xnor(x,x)=1" one (B.xnor_ b x x)

let test_builder_buf_is_alias () =
  let b = B.create "t" in
  let x = B.input b "x" in
  check_int "buf passthrough" x (B.buf b x)

let test_builder_mux_same_branches () =
  let b = B.create "t" in
  let s = B.input b "s" and x = B.input b "x" in
  check_int "mux(s,x,x)=x" x (B.mux b ~sel:s ~t1:x ~t0:x)

let test_builder_duplicate_input_rejected () =
  let b = B.create "t" in
  ignore (B.input b "x");
  (try
     ignore (B.input b "x");
     Alcotest.fail "should reject"
   with Invalid_argument _ -> ())

let test_builder_unconnected_dff_rejected () =
  let b = B.create "t" in
  let x = B.input b "x" in
  let _q = B.dff b ~init:false in
  B.output b "y" x;
  (try
     ignore (B.finalize b);
     Alcotest.fail "should reject dangling dff"
   with Netlist.Lint_error _ -> ())

let test_builder_double_connect_rejected () =
  let b = B.create "t" in
  let x = B.input b "x" in
  let q = B.dff b ~init:false in
  B.connect_dff b q ~d:x;
  (try
     B.connect_dff b q ~d:x;
     Alcotest.fail "should reject double connect"
   with Invalid_argument _ -> ())

(* ------------------------------------------------------------------ *)
(* Netlist / Topo                                                     *)
(* ------------------------------------------------------------------ *)

let test_netlist_counts () =
  let nl = full_adder () in
  check_int "inputs" 3 (Array.length nl.Netlist.input_nets);
  check_int "outputs" 2 (Array.length nl.Netlist.output_list);
  check_int "dffs" 0 (Netlist.num_dffs nl);
  check_bool "has logic" true (Netlist.num_logic_gates nl > 0)

let test_netlist_find () =
  let nl = full_adder () in
  check_bool "find a" true (Netlist.find_input nl "a" >= 0);
  check_bool "find s" true (Netlist.find_output nl "s" >= 0);
  (try
     ignore (Netlist.find_input nl "zz");
     Alcotest.fail "should raise"
   with Not_found -> ())

let test_topo_order_respects_fanins () =
  let nl = full_adder () in
  let topo = Topo.compute nl in
  let pos = Array.make (Netlist.num_gates nl) (-1) in
  Array.iteri (fun i g -> pos.(g) <- i) topo.Topo.order;
  Array.iteri
    (fun i (g : Gate.t) ->
      match g.kind with
      | Gate.Pi _ | Gate.Const _ | Gate.Dff _ -> ()
      | _ ->
        Array.iter
          (fun f -> if pos.(f) >= 0 then check_bool "fanin first" true (pos.(f) < pos.(i)))
          g.fanins)
    nl.Netlist.gates

let test_topo_levels () =
  let nl = full_adder () in
  let topo = Topo.compute nl in
  check_bool "depth >= 2" true (topo.Topo.max_level >= 2);
  Array.iter (fun net -> check_int "pi level" 0 topo.Topo.level.(net)) nl.Netlist.input_nets

let test_fanouts () =
  let nl = full_adder () in
  let fo = Netlist.fanouts nl in
  let a = Netlist.find_input nl "a" in
  check_bool "a has fanout" true (List.length fo.(a) >= 2)

(* ------------------------------------------------------------------ *)
(* Bitsim                                                             *)
(* ------------------------------------------------------------------ *)

(* Exhaustive check of the full adder over all 8 input combinations
   packed into the first 8 lanes. *)
let test_bitsim_full_adder () =
  let nl = full_adder () in
  let sim = Bitsim.create nl in
  (* lane k carries input combination k: a = bit2, b = bit1, cin = bit0 *)
  let word_of f =
    let w = ref 0 in
    for k = 0 to 7 do
      if f k then w := !w lor (1 lsl k)
    done;
    !w
  in
  let a = word_of (fun k -> (k lsr 2) land 1 = 1) in
  let b = word_of (fun k -> (k lsr 1) land 1 = 1) in
  let cin = word_of (fun k -> k land 1 = 1) in
  let outs = Bitsim.step sim [| a; b; cin |] in
  let s_word = outs.(0) and cout_word = outs.(1) in
  for k = 0 to 7 do
    let ai = (k lsr 2) land 1 and bi = (k lsr 1) land 1 and ci = k land 1 in
    let sum = ai + bi + ci in
    check_int (Printf.sprintf "s lane %d" k) (sum land 1) ((s_word lsr k) land 1);
    check_int (Printf.sprintf "cout lane %d" k) (sum lsr 1) ((cout_word lsr k) land 1)
  done

let test_bitsim_toggle_sequence () =
  let nl = toggle () in
  let sim = Bitsim.create nl in
  Bitsim.reset sim;
  (* Lane 0: enable always on -> q toggles 0,1,0,1.
     Lane 1: enable off -> q stays 0. *)
  let en = 0b01 in
  let q0 = (Bitsim.step sim [| en |]).(0) in
  let q1 = (Bitsim.step sim [| en |]).(0) in
  let q2 = (Bitsim.step sim [| en |]).(0) in
  check_int "cycle0 lane0" 0 (q0 land 1);
  check_int "cycle1 lane0" 1 (q1 land 1);
  check_int "cycle2 lane0" 0 (q2 land 1);
  check_int "lane1 never toggles" 0 ((q0 lor q1 lor q2) lsr 1 land 1)

let test_bitsim_reset_initial_value () =
  let b = B.create "t" in
  let x = B.input b "x" in
  let q = B.dff b ~init:true in
  B.connect_dff b q ~d:x;
  B.output b "q" q;
  let nl = B.finalize b in
  let sim = Bitsim.create nl in
  Bitsim.reset sim;
  let o = (Bitsim.step sim [| 0 |]).(0) in
  check_int "init 1 in all lanes" Bitsim.all_ones o

let test_bitsim_fault_injection_net () =
  let nl = full_adder () in
  let sim = Bitsim.create nl in
  let a = Netlist.find_input nl "a" in
  (* stuck-at-1 on input a with pattern a=0,b=1,cin=0: good s=1, faulty s=0 *)
  let good = Bitsim.step sim [| 0; Bitsim.all_ones; 0 |] in
  let faulty =
    Bitsim.step_with_fault sim [| 0; Bitsim.all_ones; 0 |] ~fault_net:a
      ~stuck_value:Bitsim.all_ones
  in
  check_bool "fault changes s" true (good.(0) <> faulty.(0));
  check_bool "fault changes cout" true (good.(1) <> faulty.(1))

let test_bitsim_fault_injection_pin () =
  (* y = a and b, with a also feeding z = a xor b. A pin fault on the
     AND's a-input must not disturb z. *)
  let b = B.create "t" in
  let a = B.input b "a" and bb = B.input b "b" in
  let y = B.and_ b a bb in
  let z = B.xor_ b a bb in
  B.output b "y" y;
  B.output b "z" z;
  let nl = B.finalize b in
  let sim = Bitsim.create nl in
  let pin =
    (* which pin of the AND gate reads net a? *)
    let g = nl.Netlist.gates.(y) in
    if g.Gate.fanins.(0) = a then 0 else 1
  in
  let inputs = [| 0; Bitsim.all_ones |] in
  (* a=0, b=1 *)
  let good_y = (Bitsim.step sim inputs).(0) in
  let outs =
    Bitsim.step_injected sim inputs ~inj:(Bitsim.Pin { gate = y; pin })
      ~stuck:Bitsim.all_ones
  in
  check_int "good y = 0" 0 good_y;
  check_int "faulty y = 1" Bitsim.all_ones outs.(0);
  check_int "z untouched" Bitsim.all_ones outs.(1)

let test_bitsim_sequential_fault_state () =
  (* Toggle FF with enable stuck-at-0: q never leaves 0. *)
  let nl = toggle () in
  let sim = Bitsim.create nl in
  Bitsim.reset sim;
  let en_net = Netlist.find_input nl "en" in
  let q1 =
    Bitsim.step_with_fault sim [| Bitsim.all_ones |] ~fault_net:en_net ~stuck_value:0
  in
  let q2 =
    Bitsim.step_with_fault sim [| Bitsim.all_ones |] ~fault_net:en_net ~stuck_value:0
  in
  check_int "q stays 0" 0 (q1.(0) lor q2.(0))

let test_bitsim_input_arity () =
  let nl = full_adder () in
  let sim = Bitsim.create nl in
  (try
     ignore (Bitsim.step sim [| 0; 0 |]);
     Alcotest.fail "should reject"
   with Invalid_argument _ -> ())

(* Property: bitsim lanes are independent — packing random patterns in
   lanes equals running them one at a time. *)
let prop_bitsim_lane_independence =
  let gen = QCheck.Gen.(list_size (return 8) (int_range 0 7)) in
  QCheck.Test.make ~name:"bitsim lanes independent" ~count:100 (QCheck.make gen)
    (fun patterns ->
      let nl = full_adder () in
      let sim = Bitsim.create nl in
      let word_for sel =
        List.fold_left
          (fun (k, acc) p -> (k + 1, acc lor (((p lsr sel) land 1) lsl k)))
          (0, 0) patterns
        |> snd
      in
      let packed = Bitsim.step sim [| word_for 2; word_for 1; word_for 0 |] in
      List.for_all
        (fun (k, p) ->
          let single =
            Bitsim.step sim [| (p lsr 2) land 1; (p lsr 1) land 1; p land 1 |]
          in
          ((packed.(0) lsr k) land 1) = (single.(0) land 1)
          && ((packed.(1) lsr k) land 1) = (single.(1) land 1))
        (List.mapi (fun k p -> (k, p)) patterns))

(* ------------------------------------------------------------------ *)
(* Xsim                                                               *)
(* ------------------------------------------------------------------ *)

module Xsim = Mutsamp_netlist.Xsim

let test_xsim_controlling_values_mask_x () =
  (* and(X, 0) = 0 and or(X, 1) = 1: X never leaks past a controlling
     value. *)
  let b = B.create "t" in
  let a = B.input b "a" and bb = B.input b "b" in
  B.output b "and" (B.and_ b a bb);
  B.output b "or" (B.or_ b a bb);
  B.output b "xor" (B.xor_ b a bb);
  let nl = B.finalize b in
  let sim = Xsim.create nl in
  let outs = Xsim.step sim [| Xsim.x; Xsim.known 0 |] in
  let z, o = outs.(0) in
  check_int "and known 0" Bitsim.all_ones z;
  check_int "and not 1" 0 o;
  let zx, ox = outs.(2) in
  check_int "xor unknown" 0 (zx lor ox);
  let outs1 = Xsim.step sim [| Xsim.x; Xsim.known Bitsim.all_ones |] in
  let _, o1 = outs1.(1) in
  check_int "or known 1" Bitsim.all_ones o1

let test_xsim_known_matches_bitsim () =
  (* With fully known inputs, Xsim and Bitsim agree. *)
  let nl = full_adder () in
  let xs = Xsim.create nl and bs = Bitsim.create nl in
  for code = 0 to 7 do
    let words = Array.init 3 (fun k -> if (code lsr k) land 1 = 1 then Bitsim.all_ones else 0) in
    let xouts = Xsim.step_known xs words in
    let bouts = Bitsim.step bs words in
    Array.iteri
      (fun i (z, o) ->
        check_int "no X" Bitsim.all_ones (z lor o);
        check_int "same value" bouts.(i) o)
      xouts
  done

let test_xsim_reset_known () =
  let nl = toggle () in
  let sim = Xsim.create nl in
  Xsim.reset sim;
  check_int "all known after reset" 0 (Xsim.unknown_dff_lanes sim);
  Xsim.reset_to_x sim;
  check_int "all unknown" Bitsim.word_bits (Xsim.unknown_dff_lanes sim)

let test_xsim_toggle_never_synchronizes () =
  (* q' = q xor en: from X the state stays X whatever the inputs. *)
  let nl = toggle () in
  check_bool "no sync" true
    (Xsim.synchronizing_length nl ~sequence:(Array.make 16 1) = None)

let test_xsim_load_synchronizes () =
  (* q' = d loads a known input: one cycle settles the machine. *)
  let b = B.create "load" in
  let d = B.input b "d" in
  let q = B.dff b ~init:false in
  B.connect_dff b q ~d;
  B.output b "q" q;
  let nl = B.finalize b in
  (match Xsim.synchronizing_length nl ~sequence:[| 1; 1 |] with
   | Some 1 -> ()
   | Some n -> Alcotest.fail (Printf.sprintf "expected 1 cycle, got %d" n)
   | None -> Alcotest.fail "should synchronise")

let test_xsim_combinational_trivially_synchronized () =
  let nl = full_adder () in
  check_bool "comb" true (Xsim.synchronizing_length nl ~sequence:[||] = Some 0)

let test_xsim_rejects_conflicting_value () =
  let nl = full_adder () in
  let sim = Xsim.create nl in
  (try
     ignore (Xsim.step sim [| (1, 1); Xsim.x; Xsim.x |]);
     Alcotest.fail "should reject"
   with Invalid_argument _ -> ())

(* ------------------------------------------------------------------ *)
(* Dot / Stats                                                        *)
(* ------------------------------------------------------------------ *)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  scan 0

let test_dot_output () =
  let s = Dot.of_netlist (full_adder ()) in
  check_bool "digraph" true (contains s "digraph");
  check_bool "has input a" true (contains s "\"a\"");
  check_bool "has output s" true (contains s "out_s")

let test_stats () =
  let s = Stats.compute (full_adder ()) in
  check_int "pis" 3 s.Stats.primary_inputs;
  check_int "pos" 2 s.Stats.primary_outputs;
  check_int "ffs" 0 s.Stats.flip_flops;
  check_bool "gates > 0" true (s.Stats.logic_gates > 0);
  check_bool "levels > 0" true (s.Stats.levels > 0);
  check_bool "histogram mentions XOR" true
    (List.mem_assoc "XOR" s.Stats.gate_histogram)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ( "netlist.builder",
      [
        Alcotest.test_case "strash shares" `Quick test_builder_strash_shares;
        Alcotest.test_case "const folding" `Quick test_builder_const_folding;
        Alcotest.test_case "buf alias" `Quick test_builder_buf_is_alias;
        Alcotest.test_case "mux same branches" `Quick test_builder_mux_same_branches;
        Alcotest.test_case "duplicate input" `Quick test_builder_duplicate_input_rejected;
        Alcotest.test_case "unconnected dff" `Quick test_builder_unconnected_dff_rejected;
        Alcotest.test_case "double connect" `Quick test_builder_double_connect_rejected;
      ] );
    ( "netlist.core",
      [
        Alcotest.test_case "counts" `Quick test_netlist_counts;
        Alcotest.test_case "find by name" `Quick test_netlist_find;
        Alcotest.test_case "topo respects fanins" `Quick test_topo_order_respects_fanins;
        Alcotest.test_case "topo levels" `Quick test_topo_levels;
        Alcotest.test_case "fanouts" `Quick test_fanouts;
      ] );
    ( "netlist.bitsim",
      [
        Alcotest.test_case "full adder exhaustive" `Quick test_bitsim_full_adder;
        Alcotest.test_case "toggle sequence" `Quick test_bitsim_toggle_sequence;
        Alcotest.test_case "reset initial value" `Quick test_bitsim_reset_initial_value;
        Alcotest.test_case "net fault injection" `Quick test_bitsim_fault_injection_net;
        Alcotest.test_case "pin fault injection" `Quick test_bitsim_fault_injection_pin;
        Alcotest.test_case "sequential fault state" `Quick test_bitsim_sequential_fault_state;
        Alcotest.test_case "input arity" `Quick test_bitsim_input_arity;
        q prop_bitsim_lane_independence;
      ] );
    ( "netlist.xsim",
      [
        Alcotest.test_case "controlling values" `Quick test_xsim_controlling_values_mask_x;
        Alcotest.test_case "known matches bitsim" `Quick test_xsim_known_matches_bitsim;
        Alcotest.test_case "reset known" `Quick test_xsim_reset_known;
        Alcotest.test_case "toggle never syncs" `Quick test_xsim_toggle_never_synchronizes;
        Alcotest.test_case "load syncs" `Quick test_xsim_load_synchronizes;
        Alcotest.test_case "comb trivially synced" `Quick test_xsim_combinational_trivially_synchronized;
        Alcotest.test_case "rejects conflict" `Quick test_xsim_rejects_conflicting_value;
      ] );
    ( "netlist.reports",
      [
        Alcotest.test_case "dot" `Quick test_dot_output;
        Alcotest.test_case "stats" `Quick test_stats;
      ] );
  ]
