(* Tests for lib/circuits: each benchmark parses/elaborates,
   synthesises, matches its functional specification, and behaves like
   its netlist image. *)

module Bitvec = Mutsamp_util.Bitvec
module Prng = Mutsamp_util.Prng
module Ast = Mutsamp_hdl.Ast
module Check = Mutsamp_hdl.Check
module Sim = Mutsamp_hdl.Sim
module Stimuli = Mutsamp_hdl.Stimuli
module Netlist = Mutsamp_netlist.Netlist
module Bitsim = Mutsamp_netlist.Bitsim
module Registry = Mutsamp_circuits.Registry
module C17 = Mutsamp_circuits.C17
module C432 = Mutsamp_circuits.C432
module C499 = Mutsamp_circuits.C499
module Flow = Mutsamp_synth.Flow
module Mapping = Mutsamp_synth.Mapping

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let bv w v = Bitvec.make ~width:w v

(* ------------------------------------------------------------------ *)
(* Registry                                                           *)
(* ------------------------------------------------------------------ *)

let test_registry_contents () =
  check_int "eleven benchmarks" 11 (List.length Registry.all);
  check_int "four paper benchmarks" 4 (List.length Registry.paper_benchmarks);
  Alcotest.(check (list string))
    "paper set"
    [ "b01"; "b03"; "c432"; "c499" ]
    (List.map (fun (e : Registry.entry) -> e.Registry.name) Registry.paper_benchmarks)

let test_registry_find () =
  check_bool "finds b01" true (Registry.find "b01" <> None);
  check_bool "case-insensitive" true (Registry.find "C432" <> None);
  check_bool "unknown none" true (Registry.find "zz99" = None)

let test_all_designs_elaborate () =
  List.iter
    (fun (e : Registry.entry) ->
      let d = e.Registry.design () in
      check_bool (e.Registry.name ^ " elaborated") true (Check.is_elaborated d);
      let is_comb = Check.is_combinational d in
      check_bool (e.Registry.name ^ " kind consistent") true
        (match e.Registry.kind with
         | Registry.Combinational -> is_comb
         | Registry.Sequential -> not is_comb))
    Registry.all

let test_all_designs_synthesize () =
  List.iter
    (fun (e : Registry.entry) ->
      let d = e.Registry.design () in
      let nl = Flow.synthesize d in
      check_bool (e.Registry.name ^ " has gates") true (Netlist.num_logic_gates nl > 0))
    Registry.all

(* Synthesis equivalence for every benchmark on random stimuli. *)
let test_all_designs_netlist_agrees () =
  let prng = Prng.create 0xBEEF in
  List.iter
    (fun (e : Registry.entry) ->
      let d = e.Registry.design () in
      let _, mapping = Flow.synthesize_mapped d in
      let sim = Bitsim.create (Mapping.netlist mapping) in
      Bitsim.reset sim;
      let seq = Stimuli.random_sequence prng d 24 in
      let hdl = Sim.run d seq in
      List.iter2
        (fun stim expected ->
          let words = Bitsim.step sim (Mapping.pack_stimulus mapping stim) in
          let got = Mapping.unpack_outputs mapping words ~lane:0 in
          check_bool (e.Registry.name ^ " netlist agrees") true
            (Sim.outputs_equal got expected))
        seq hdl)
    Registry.all

(* Every benchmark survives a pretty-print/re-parse round trip. *)
let test_all_designs_pretty_roundtrip () =
  List.iter
    (fun (e : Registry.entry) ->
      let d = e.Registry.design () in
      let reparsed =
        Check.elaborate
          (Mutsamp_robust.Error.ok_exn
             (Mutsamp_hdl.Parser.design_result (Mutsamp_hdl.Pretty.design d)))
      in
      check_bool (e.Registry.name ^ " roundtrip") true (Ast.equal_design d reparsed))
    Registry.all

(* ------------------------------------------------------------------ *)
(* b01 / b02 / b03 functional checks                                  *)
(* ------------------------------------------------------------------ *)

let design name =
  match Registry.find name with
  | Some e -> e.Registry.design ()
  | None -> Alcotest.fail ("missing benchmark " ^ name)

let test_b01_basic_run () =
  let d = design "b01" in
  let stim l1 l2 = [ ("line1", bv 1 l1); ("line2", bv 1 l2) ] in
  (* Equal streams walk A -> B -> D/E ... and never raise overflw in the
     first two cycles. *)
  let outs = Sim.run d [ stim 0 0; stim 1 1; stim 1 1; stim 1 1 ] in
  List.iteri
    (fun i o ->
      if i < 2 then
        check_int (Printf.sprintf "no early overflw (cycle %d)" i) 0
          (Bitvec.to_int (List.assoc "overflw" o)))
    outs;
  check_int "cycles" 4 (List.length outs)

let test_b02_accepts_bcd () =
  let d = design "b02" in
  let feed bits = List.map (fun bit -> [ ("linea", bv 1 bit) ]) bits in
  let u_pulses bits =
    let outs = Sim.run d (feed bits) in
    List.fold_left
      (fun acc o -> acc + Bitvec.to_int (List.assoc "u" o))
      0 outs
  in
  (* 0b0011 = 3 (valid) -> exactly one pulse; 0b1111 = 15 (invalid) ->
     none. MSB first. *)
  check_int "valid digit accepted" 1 (u_pulses [ 0; 0; 1; 1 ]);
  check_int "invalid digit rejected" 0 (u_pulses [ 1; 1; 1; 1 ]);
  check_int "nine accepted" 1 (u_pulses [ 1; 0; 0; 1 ]);
  check_int "ten rejected" 0 (u_pulses [ 1; 0; 1; 0 ])

let test_b03_grant_behaviour () =
  let d = design "b03" in
  let stim r1 r2 r3 r4 =
    [ ("req1", bv 1 r1); ("req2", bv 1 r2); ("req3", bv 1 r3); ("req4", bv 1 r4) ]
  in
  (* A single requester eventually gets a one-hot grant held with busy. *)
  let outs = Sim.run d [ stim 0 1 0 0; stim 0 0 0 0; stim 0 0 0 0 ] in
  (match outs with
   | [ o1; o2; o3 ] ->
     check_int "cycle1 no grant yet" 0 (Bitvec.to_int (List.assoc "grant" o1));
     check_int "cycle2 grant to req2" 0b0010 (Bitvec.to_int (List.assoc "grant" o2));
     check_int "cycle2 busy" 1 (Bitvec.to_int (List.assoc "busy" o2));
     check_int "cycle3 still held" 0b0010 (Bitvec.to_int (List.assoc "grant" o3))
   | _ -> Alcotest.fail "three observations expected")

let test_b03_round_robin_rotates () =
  let d = design "b03" in
  let stim r1 r2 r3 r4 =
    [ ("req1", bv 1 r1); ("req2", bv 1 r2); ("req3", bv 1 r3); ("req4", bv 1 r4) ]
  in
  (* All requesters always asserted: collect the sequence of distinct
     grants; rotation must visit more than one requester. *)
  let outs = Sim.run d (List.init 24 (fun _ -> stim 1 1 1 1)) in
  let grants =
    List.sort_uniq Stdlib.compare
      (List.filter (fun g -> g <> 0)
         (List.map (fun o -> Bitvec.to_int (List.assoc "grant" o)) outs))
  in
  check_bool "several grantees" true (List.length grants >= 2);
  List.iter
    (fun g -> check_bool "one-hot" true (g land (g - 1) = 0))
    grants

let test_b08_matches_pattern () =
  let d = design "b08" in
  let stim load din = [ ("load", bv 1 load); ("din", bv 1 din) ] in
  (* Load 1010, then stream 101010: match pulses whenever the sliding
     window holds the pattern. *)
  let loads = [ stim 1 1; stim 1 0; stim 1 1; stim 1 0 ] in
  let streams = List.map (fun b -> stim 0 b) [ 1; 0; 1; 0; 1; 0 ] in
  let outs = Sim.run d (loads @ streams) in
  let matches = List.map (fun o -> Bitvec.to_int (List.assoc "match_o" o)) outs in
  Alcotest.(check (list int)) "match trace"
    [ 0; 0; 0; 0; 0; 0; 0; 1; 0; 1 ]
    matches

let test_b09_converts () =
  let d = design "b09" in
  let feed bits = List.map (fun b -> [ ("din", bv 1 b) ]) bits in
  (* Two words: 1011 then 0110, MSB first; valid pulses one cycle after
     each 4th bit with the word on dout. *)
  let outs = Sim.run d (feed [ 1; 0; 1; 1; 0; 1; 1; 0; 0 ]) in
  let at i field = Bitvec.to_int (List.assoc field (List.nth outs i)) in
  check_int "no early valid" 0 (at 3 "valid");
  check_int "first word valid" 1 (at 4 "valid");
  check_int "first word value" 0b1011 (at 4 "dout");
  check_int "gap not valid" 0 (at 5 "valid");
  check_int "second word valid" 1 (at 8 "valid");
  check_int "second word value" 0b0110 (at 8 "dout")

(* ------------------------------------------------------------------ *)
(* c17                                                                *)
(* ------------------------------------------------------------------ *)

let test_c17_netlist_structure () =
  let nl = C17.netlist () in
  check_int "five inputs" 5 (Array.length nl.Netlist.input_nets);
  check_int "two outputs" 2 (Array.length nl.Netlist.output_list);
  check_int "six nands" 6 (Netlist.num_logic_gates nl)

let test_c17_design_matches_netlist () =
  let d = C17.design () in
  let reference = Bitsim.create (C17.netlist ()) in
  for code = 0 to 31 do
    let stim =
      List.mapi
        (fun k name -> (name, bv 1 ((code lsr k) land 1)))
        [ "g1"; "g2"; "g3"; "g6"; "g7" ]
    in
    let hdl = List.concat (Sim.run d [ stim ]) in
    (* The published netlist orders inputs G1 G2 G3 G6 G7. *)
    let words = Array.init 5 (fun k -> if (code lsr k) land 1 = 1 then Bitsim.all_ones else 0) in
    let outs = Bitsim.step reference words in
    check_int
      (Printf.sprintf "g22 at %d" code)
      (outs.(0) land 1)
      (Bitvec.to_int (List.assoc "g22" hdl));
    check_int
      (Printf.sprintf "g23 at %d" code)
      (outs.(1) land 1)
      (Bitvec.to_int (List.assoc "g23" hdl))
  done

(* ------------------------------------------------------------------ *)
(* c432                                                               *)
(* ------------------------------------------------------------------ *)

let c432_stim a b c e =
  [ ("a", bv 9 a); ("b", bv 9 b); ("c", bv 9 c); ("e", bv 9 e) ]

let run_c432 a b c e =
  let d = C432.design () in
  List.concat (Sim.run d [ c432_stim a b c e ])

let test_c432_priority () =
  (* Bus a wins over b and c. *)
  let o = run_c432 0b000000001 0b100000000 0b111111111 0b111111111 in
  check_int "pa" 1 (Bitvec.to_int (List.assoc "pa" o));
  check_int "pb" 0 (Bitvec.to_int (List.assoc "pb" o));
  check_int "chan is line 1" 1 (Bitvec.to_int (List.assoc "chan" o))

let test_c432_enable_masks () =
  (* The only request sits on a disabled line: nothing wins. *)
  let o = run_c432 0b000000010 0 0 0b000000001 in
  check_int "pa" 0 (Bitvec.to_int (List.assoc "pa" o));
  check_int "chan" 0 (Bitvec.to_int (List.assoc "chan" o))

let test_c432_within_bus_priority () =
  (* Line 8 beats line 0 within the same bus. *)
  let o = run_c432 0b100000001 0 0 0b111111111 in
  check_int "chan is line 9" 9 (Bitvec.to_int (List.assoc "chan" o))

let test_c432_lower_bus_wins_when_upper_idle () =
  let o = run_c432 0 0 0b000010000 0b111111111 in
  check_int "pc" 1 (Bitvec.to_int (List.assoc "pc" o));
  check_int "chan" 5 (Bitvec.to_int (List.assoc "chan" o))

(* ------------------------------------------------------------------ *)
(* c499                                                               *)
(* ------------------------------------------------------------------ *)

let test_c499_patterns_distinct_weighty () =
  let seen = Hashtbl.create 32 in
  Array.iter
    (fun p ->
      check_bool "weight >= 2" true
        (let rec pc v = if v = 0 then 0 else (v land 1) + pc (v lsr 1) in
         pc p >= 2);
      check_bool "distinct" false (Hashtbl.mem seen p);
      Hashtbl.add seen p ())
    C499.patterns;
  check_int "32 patterns" 32 (Array.length C499.patterns)

let c499_run data check r =
  let d = C499.design () in
  let stim = [ ("data", bv 32 data); ("check", bv 8 check); ("r", bv 1 r) ] in
  Bitvec.to_int (List.assoc "od" (List.concat (Sim.run d [ stim ])))

let test_c499_clean_word_passes () =
  let data = 0xDEADBEE5 land 0xFFFFFFFF in
  let check = C499.encode_checks ~data in
  check_int "no correction" data (c499_run data check 0)

let test_c499_corrects_single_bit () =
  let data = 0x12345678 in
  let check = C499.encode_checks ~data in
  for i = 0 to 31 do
    let corrupted = data lxor (1 lsl i) in
    check_int (Printf.sprintf "bit %d corrected" i) data (c499_run corrupted check 0)
  done

let test_c499_bypass () =
  let data = 0x0F0F0F0F in
  let check = C499.encode_checks ~data in
  let corrupted = data lxor 0b100 in
  check_int "bypass leaves error" corrupted (c499_run corrupted check 1)

let test_c499_check_bit_error_untouched () =
  (* A single check-bit error yields a weight-1 syndrome: no data bit is
     flipped. *)
  let data = 0xCAFEBABE land 0xFFFFFFFF in
  let check = C499.encode_checks ~data lxor 0b1 in
  check_int "data unchanged" data (c499_run data check 0)

(* Property: HDL model agrees with the executable specification. *)
let prop_c499_matches_reference =
  let gen = QCheck.Gen.(triple (int_bound 0x3FFFFFFF) (int_bound 255) bool) in
  QCheck.Test.make ~name:"c499 model = reference decoder" ~count:100
    (QCheck.make gen) (fun (data_lo, check, bypass) ->
      (* Build a 32-bit value from the 30-bit draw plus reuse of bits. *)
      let data = data_lo lor ((data_lo land 0b11) lsl 30) in
      let expected = C499.reference_decode ~data ~check ~bypass in
      c499_run data check (if bypass then 1 else 0) = expected)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ( "circuits.registry",
      [
        Alcotest.test_case "contents" `Quick test_registry_contents;
        Alcotest.test_case "find" `Quick test_registry_find;
        Alcotest.test_case "all elaborate" `Quick test_all_designs_elaborate;
        Alcotest.test_case "all synthesise" `Quick test_all_designs_synthesize;
        Alcotest.test_case "netlists agree" `Quick test_all_designs_netlist_agrees;
        Alcotest.test_case "pretty roundtrip" `Quick test_all_designs_pretty_roundtrip;
      ] );
    ( "circuits.sequential",
      [
        Alcotest.test_case "b01 basic" `Quick test_b01_basic_run;
        Alcotest.test_case "b02 BCD" `Quick test_b02_accepts_bcd;
        Alcotest.test_case "b03 grant" `Quick test_b03_grant_behaviour;
        Alcotest.test_case "b03 round robin" `Quick test_b03_round_robin_rotates;
        Alcotest.test_case "b08 pattern match" `Quick test_b08_matches_pattern;
        Alcotest.test_case "b09 converter" `Quick test_b09_converts;
      ] );
    ( "circuits.c17",
      [
        Alcotest.test_case "structure" `Quick test_c17_netlist_structure;
        Alcotest.test_case "design = netlist" `Quick test_c17_design_matches_netlist;
      ] );
    ( "circuits.c432",
      [
        Alcotest.test_case "bus priority" `Quick test_c432_priority;
        Alcotest.test_case "enable masks" `Quick test_c432_enable_masks;
        Alcotest.test_case "line priority" `Quick test_c432_within_bus_priority;
        Alcotest.test_case "lower bus wins" `Quick test_c432_lower_bus_wins_when_upper_idle;
      ] );
    ( "circuits.c499",
      [
        Alcotest.test_case "patterns" `Quick test_c499_patterns_distinct_weighty;
        Alcotest.test_case "clean word" `Quick test_c499_clean_word_passes;
        Alcotest.test_case "corrects single bit" `Quick test_c499_corrects_single_bit;
        Alcotest.test_case "bypass" `Quick test_c499_bypass;
        Alcotest.test_case "check-bit error" `Quick test_c499_check_bit_error_untouched;
        q prop_c499_matches_reference;
      ] );
  ]
