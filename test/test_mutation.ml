(* Tests for lib/mutation: operator set, mutant generation, kill engine,
   simulation-based equivalence. *)

module Bitvec = Mutsamp_util.Bitvec
module Ast = Mutsamp_hdl.Ast
module Parser = Mutsamp_hdl.Parser
module Check = Mutsamp_hdl.Check
module Sim = Mutsamp_hdl.Sim
module Stimuli = Mutsamp_hdl.Stimuli
module Operator = Mutsamp_mutation.Operator
module Mutant = Mutsamp_mutation.Mutant
module Generate = Mutsamp_mutation.Generate
module Kill = Mutsamp_mutation.Kill
module Equivalence = Mutsamp_mutation.Equivalence

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let bv w v = Bitvec.make ~width:w v
let parse src =
  Check.elaborate (Mutsamp_robust.Error.ok_exn (Parser.design_result src))

let and_gate_src =
  {|design and2 is
  input a : bit;
  input b : bit;
  output y : bit;
begin
  y := a and b;
end design;|}

let alu_src =
  {|design mini_alu is
  input a : unsigned(4);
  input b : unsigned(4);
  input op : bit;
  output y : unsigned(4);
  output eq : bit;
  const K : unsigned(4) := 5;
begin
  eq := a = b;
  if op = '1' then
    y := a + b;
  else
    y := a - b;
  end if;
  if a = K then
    y := 0;
  end if;
end design;|}

let counter_src =
  {|design counter is
  input en : bit;
  output q : unsigned(3);
  reg count : unsigned(3) := 0;
begin
  q := count;
  if en = '1' then
    count := count + 1;
  end if;
end design;|}

(* ------------------------------------------------------------------ *)
(* Operator                                                           *)
(* ------------------------------------------------------------------ *)

let test_operator_roundtrip () =
  List.iter
    (fun op ->
      match Operator.of_string (Operator.name op) with
      | Some op' -> check_bool "roundtrip" true (Operator.equal op op')
      | None -> Alcotest.fail "of_string failed")
    Operator.all

let test_operator_count () = check_int "ten operators" 10 (List.length Operator.all)

let test_operator_of_string_case_insensitive () =
  (match Operator.of_string "lor" with
   | Some Operator.LOR -> ()
   | _ -> Alcotest.fail "lowercase accepted");
  check_bool "unknown" true (Operator.of_string "XYZ" = None)

(* ------------------------------------------------------------------ *)
(* Generate                                                           *)
(* ------------------------------------------------------------------ *)

let test_generate_and_gate () =
  let d = parse and_gate_src in
  let ms = Generate.all d in
  check_bool "nonempty" true (List.length ms > 0);
  (* The single logical operator yields 5 LOR mutants. *)
  let lor_mutants = List.filter (fun (m : Mutant.t) -> m.op = Operator.LOR) ms in
  check_int "LOR count" 5 (List.length lor_mutants)

let test_generate_ids_sequential () =
  let ms = Generate.all (parse alu_src) in
  List.iteri (fun i (m : Mutant.t) -> check_int "id" i m.id) ms

let test_generate_all_elaborated () =
  let ms = Generate.all (parse alu_src) in
  List.iter
    (fun (m : Mutant.t) -> check_bool "elaborated" true (Check.is_elaborated m.design))
    ms

let test_generate_all_differ_from_original () =
  let d = parse alu_src in
  let ms = Generate.all d in
  List.iter
    (fun (m : Mutant.t) ->
      check_bool "differs" false (Ast.equal_design d m.design))
    ms

let test_generate_same_interface () =
  let d = parse alu_src in
  List.iter
    (fun (m : Mutant.t) ->
      check_bool "interface preserved" true (Equivalence.same_interface d m.design))
    (Generate.all d)

let test_generate_operator_coverage () =
  let ms = Generate.all (parse alu_src) in
  let count op =
    List.length (List.filter (fun (m : Mutant.t) -> Operator.equal m.op op) ms)
  in
  check_bool "AOR present" true (count Operator.AOR > 0);
  check_bool "ROR present" true (count Operator.ROR > 0);
  check_bool "VR present" true (count Operator.VR > 0);
  check_bool "CVR present" true (count Operator.CVR > 0);
  check_bool "VCR present" true (count Operator.VCR > 0);
  check_bool "CR present" true (count Operator.CR > 0);
  check_bool "SDL present" true (count Operator.SDL > 0);
  check_bool "UOI present" true (count Operator.UOI > 0)

let test_generate_uod_only_on_not () =
  (* No [not] in the ALU source, so no UOD mutants. *)
  let ms = Generate.all (parse alu_src) in
  check_int "no UOD" 0
    (List.length (List.filter (fun (m : Mutant.t) -> m.op = Operator.UOD) ms));
  let with_not =
    parse
      {|design n is input a : bit; output y : bit;
        begin y := not a; end design;|}
  in
  let ms = Generate.all with_not in
  check_int "one UOD" 1
    (List.length (List.filter (fun (m : Mutant.t) -> m.op = Operator.UOD) ms))

let test_generate_cr_only_with_constants () =
  (* A design whose only literals appear in comparisons still yields CR
     mutants from those literals. *)
  let ms = Generate.all (parse counter_src) in
  let cr = List.filter (fun (m : Mutant.t) -> m.op = Operator.CR) ms in
  check_bool "CR from literals" true (List.length cr > 0)

let test_for_operator_subset () =
  let d = parse alu_src in
  let all = Generate.all d in
  let vr = Generate.for_operator d Operator.VR in
  check_int "subset count matches"
    (List.length (List.filter (fun (m : Mutant.t) -> m.op = Operator.VR) all))
    (List.length vr);
  List.iter (fun (m : Mutant.t) -> check_bool "op" true (m.op = Operator.VR)) vr

let test_count_by_operator_total () =
  let ms = Generate.all (parse alu_src) in
  let counts = Generate.count_by_operator ms in
  check_int "ten entries" 10 (List.length counts);
  check_int "total matches"
    (List.length ms)
    (List.fold_left (fun acc (_, n) -> acc + n) 0 counts)

let test_generate_rejects_unelaborated () =
  let raw = Mutsamp_robust.Error.ok_exn (Parser.design_result alu_src) in
  (try
     ignore (Generate.all raw);
     Alcotest.fail "should reject"
   with Invalid_argument _ -> ())

(* Deterministic generation: two runs produce the same list. *)
let test_generate_deterministic () =
  let d = parse alu_src in
  let a = Generate.all d and b = Generate.all d in
  check_bool "same" true (a = b)

(* ------------------------------------------------------------------ *)
(* Kill                                                               *)
(* ------------------------------------------------------------------ *)

let stim2 a b = [ ("a", bv 1 a); ("b", bv 1 b) ]

let test_kill_and_gate_lor () =
  let d = parse and_gate_src in
  let ms = Generate.for_operator d Operator.LOR in
  let runner = Kill.make d ms in
  (* 0,1 distinguishes AND from OR, XOR, NOR, ... for most mutants. *)
  let killed = Kill.kills runner [ stim2 0 1 ] in
  check_bool "some killed" true (List.length killed > 0);
  (* Applying all four input vectors kills every non-equivalent LOR
     mutant of a 2-input AND (all five alternatives differ). *)
  let all4 = [ [ stim2 0 0 ]; [ stim2 0 1 ]; [ stim2 1 0 ]; [ stim2 1 1 ] ] in
  let flags = Kill.killed_set runner all4 in
  Array.iter (fun k -> check_bool "all LOR killed" true k) flags

let test_kill_stops_early_is_consistent () =
  let d = parse and_gate_src in
  let ms = Generate.all d in
  let runner = Kill.make d ms in
  let seq = [ stim2 1 1; stim2 0 1 ] in
  List.iter
    (fun i ->
      check_bool "killed_by agrees with kills" true
        (List.mem i (Kill.kills runner seq) = Kill.killed_by runner i seq))
    (List.init (Kill.size runner) (fun i -> i))

let test_kill_alive_restriction () =
  let d = parse and_gate_src in
  let runner = Kill.make d (Generate.all d) in
  let seq = [ stim2 0 1 ] in
  let all_killed = Kill.kills runner seq in
  match all_killed with
  | [] -> Alcotest.fail "expected kills"
  | first :: _ ->
    let restricted = Kill.kills runner ~alive:[ first ] seq in
    check_bool "restricted" true (restricted = [ first ])

let test_kill_sequential_mutant () =
  let d = parse counter_src in
  let ms = Generate.all d in
  let runner = Kill.make d ms in
  (* A long enable burst distinguishes counting faults. *)
  let seq = List.init 8 (fun _ -> [ ("en", bv 1 1) ]) in
  let killed = Kill.kills runner seq in
  check_bool "many killed" true (List.length killed > Kill.size runner / 2)

let test_kills_at_cycles () =
  let d = parse counter_src in
  let runner = Kill.make d (Generate.all d) in
  let seq = List.init 6 (fun _ -> [ ("en", bv 1 1) ]) in
  let detections = Kill.kills_at runner seq in
  check_bool "some detections" true (detections <> []);
  List.iter
    (fun (i, c) ->
      check_bool "cycle in range" true (c >= 0 && c < 6);
      (* The truncated prefix up to the detection cycle also kills. *)
      let prefix = List.filteri (fun k _ -> k <= c) seq in
      check_bool "prefix kills" true (Kill.killed_by runner i prefix);
      (* One cycle less does not (first detection is minimal). *)
      if c > 0 then begin
        let shorter = List.filteri (fun k _ -> k < c) seq in
        check_bool "shorter misses" false (Kill.killed_by runner i shorter)
      end)
    detections

let test_kills_at_agrees_with_kills () =
  let d = parse and_gate_src in
  let runner = Kill.make d (Generate.all d) in
  let seq = [ stim2 1 0; stim2 1 1 ] in
  Alcotest.(check (list int))
    "same victims"
    (Kill.kills runner seq)
    (List.map fst (Kill.kills_at runner seq))

let test_kill_empty_sequence_kills_nothing_extra () =
  let d = parse and_gate_src in
  let runner = Kill.make d (Generate.all d) in
  check_int "no kills" 0 (List.length (Kill.kills runner []))

(* ------------------------------------------------------------------ *)
(* Equivalence                                                        *)
(* ------------------------------------------------------------------ *)

let test_equiv_self () =
  let d = parse and_gate_src in
  (match Equivalence.exhaustive_combinational d d with
   | Equivalence.Equivalent -> ()
   | v -> Alcotest.fail ("self not equivalent: " ^ Equivalence.verdict_name v))

let test_equiv_distinguishes_or () =
  let d = parse and_gate_src in
  let d_or =
    parse
      {|design and2 is
  input a : bit;
  input b : bit;
  output y : bit;
begin
  y := a or b;
end design;|}
  in
  (match Equivalence.exhaustive_combinational d d_or with
   | Equivalence.Distinguished [ stim ] ->
     (* The counterexample really distinguishes the two designs. *)
     let oa = List.concat (Sim.run d [ stim ]) in
     let ob = List.concat (Sim.run d_or [ stim ]) in
     check_bool "really differs" false
       (Bitvec.equal (List.assoc "y" oa) (List.assoc "y" ob))
   | v -> Alcotest.fail ("expected distinguished: " ^ Equivalence.verdict_name v))

let test_equiv_detects_equivalent_mutant () =
  (* a and a is equivalent to a or a: an equivalent-mutant shape. *)
  let d1 =
    parse
      {|design t is input a : bit; output y : bit; begin y := a and a; end design;|}
  in
  let d2 =
    parse
      {|design t is input a : bit; output y : bit; begin y := a or a; end design;|}
  in
  (match Equivalence.check d1 d2 with
   | Equivalence.Equivalent -> ()
   | v -> Alcotest.fail ("expected equivalent: " ^ Equivalence.verdict_name v))

let test_equiv_budget_unknown () =
  let wide =
    parse
      {|design w is input a : unsigned(30); output y : bit;
        begin y := a[0]; end design;|}
  in
  (match Equivalence.exhaustive_combinational ~max_bits:16 wide wide with
   | Equivalence.Unknown -> ()
   | v -> Alcotest.fail ("expected unknown: " ^ Equivalence.verdict_name v))

let test_equiv_product_bfs_counter () =
  let d = parse counter_src in
  (match Equivalence.product_bfs d d with
   | Equivalence.Equivalent -> ()
   | v -> Alcotest.fail ("self: " ^ Equivalence.verdict_name v));
  (* Mutant: counts by 2 — distinguishable after two enables. *)
  let mutant =
    parse
      {|design counter is
  input en : bit;
  output q : unsigned(3);
  reg count : unsigned(3) := 0;
begin
  q := count;
  if en = '1' then
    count := count + 2;
  end if;
end design;|}
  in
  (match Equivalence.product_bfs d mutant with
   | Equivalence.Distinguished seq ->
     check_bool "nonempty sequence" true (List.length seq >= 2);
     (* Verify the sequence really distinguishes. *)
     let oa = Sim.run d seq and ob = Sim.run mutant seq in
     check_bool "distinguishes" true
       (List.exists2 (fun a b -> not (Sim.outputs_equal a b)) oa ob)
   | v -> Alcotest.fail ("expected distinguished: " ^ Equivalence.verdict_name v))

let test_equiv_bfs_finds_shortest () =
  (* A fault only visible after reaching state 3 needs >= 4 cycles. *)
  let good =
    parse
      {|design fsm is
  input go : bit;
  output y : bit;
  reg s : unsigned(2) := 0;
begin
  y := '0';
  if s = 3 then
    y := '1';
    s := 0;
  else
    if go = '1' then
      s := s + 1;
    end if;
  end if;
end design;|}
  in
  let bad =
    parse
      {|design fsm is
  input go : bit;
  output y : bit;
  reg s : unsigned(2) := 0;
begin
  y := '0';
  if s = 3 then
    y := '0';
    s := 0;
  else
    if go = '1' then
      s := s + 1;
    end if;
  end if;
end design;|}
  in
  (match Equivalence.product_bfs good bad with
   | Equivalence.Distinguished seq -> check_int "shortest length" 4 (List.length seq)
   | v -> Alcotest.fail ("expected distinguished: " ^ Equivalence.verdict_name v))

let test_equiv_interface_mismatch () =
  let a = parse and_gate_src and b = parse counter_src in
  (try
     ignore (Equivalence.check a b);
     Alcotest.fail "should reject"
   with Invalid_argument _ -> ())

(* Property: for random LOR/AOR mutants of the mini ALU, the
   equivalence verdict agrees with brute-force exhaustive comparison. *)
let prop_equivalence_matches_bruteforce =
  let d = parse alu_src in
  let ms = Array.of_list (Generate.all d) in
  let arb = QCheck.make ~print:(fun i -> Mutant.to_string ms.(i))
      QCheck.Gen.(int_range 0 (Array.length ms - 1)) in
  QCheck.Test.make ~name:"equivalence check agrees with brute force" ~count:60 arb
    (fun i ->
      let m = ms.(i) in
      let brute =
        let sims = Sim.create d and simm = Sim.create m.Mutant.design in
        List.for_all
          (fun stim -> Sim.outputs_equal (Sim.step sims stim) (Sim.step simm stim))
          (Stimuli.enumerate d)
      in
      match Equivalence.check d m.Mutant.design with
      | Equivalence.Equivalent -> brute
      | Equivalence.Distinguished _ -> not brute
      | Equivalence.Unknown -> false)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ( "mutation.operator",
      [
        Alcotest.test_case "roundtrip" `Quick test_operator_roundtrip;
        Alcotest.test_case "ten operators" `Quick test_operator_count;
        Alcotest.test_case "case-insensitive" `Quick test_operator_of_string_case_insensitive;
      ] );
    ( "mutation.generate",
      [
        Alcotest.test_case "and gate LOR" `Quick test_generate_and_gate;
        Alcotest.test_case "ids sequential" `Quick test_generate_ids_sequential;
        Alcotest.test_case "all elaborated" `Quick test_generate_all_elaborated;
        Alcotest.test_case "all differ" `Quick test_generate_all_differ_from_original;
        Alcotest.test_case "interface preserved" `Quick test_generate_same_interface;
        Alcotest.test_case "operator coverage" `Quick test_generate_operator_coverage;
        Alcotest.test_case "UOD needs not" `Quick test_generate_uod_only_on_not;
        Alcotest.test_case "CR from literals" `Quick test_generate_cr_only_with_constants;
        Alcotest.test_case "for_operator subset" `Quick test_for_operator_subset;
        Alcotest.test_case "count histogram" `Quick test_count_by_operator_total;
        Alcotest.test_case "rejects unelaborated" `Quick test_generate_rejects_unelaborated;
        Alcotest.test_case "deterministic" `Quick test_generate_deterministic;
      ] );
    ( "mutation.kill",
      [
        Alcotest.test_case "and gate LOR kills" `Quick test_kill_and_gate_lor;
        Alcotest.test_case "killed_by consistent" `Quick test_kill_stops_early_is_consistent;
        Alcotest.test_case "alive restriction" `Quick test_kill_alive_restriction;
        Alcotest.test_case "sequential mutants" `Quick test_kill_sequential_mutant;
        Alcotest.test_case "kills_at cycles" `Quick test_kills_at_cycles;
        Alcotest.test_case "kills_at agrees" `Quick test_kills_at_agrees_with_kills;
        Alcotest.test_case "empty sequence" `Quick test_kill_empty_sequence_kills_nothing_extra;
      ] );
    ( "mutation.equivalence",
      [
        Alcotest.test_case "self equivalent" `Quick test_equiv_self;
        Alcotest.test_case "distinguishes or" `Quick test_equiv_distinguishes_or;
        Alcotest.test_case "equivalent mutant" `Quick test_equiv_detects_equivalent_mutant;
        Alcotest.test_case "budget unknown" `Quick test_equiv_budget_unknown;
        Alcotest.test_case "product bfs counter" `Quick test_equiv_product_bfs_counter;
        Alcotest.test_case "bfs shortest" `Quick test_equiv_bfs_finds_shortest;
        Alcotest.test_case "interface mismatch" `Quick test_equiv_interface_mismatch;
        q prop_equivalence_matches_bruteforce;
      ] );
  ]
