(* Tests for lib/validation: mutation-adequate vector generation and the
   mutation score. *)

module Bitvec = Mutsamp_util.Bitvec
module Parser = Mutsamp_hdl.Parser
module Check = Mutsamp_hdl.Check
module Generate = Mutsamp_mutation.Generate
module Mutant = Mutsamp_mutation.Mutant
module Kill = Mutsamp_mutation.Kill
module Vectorgen = Mutsamp_validation.Vectorgen
module Score = Mutsamp_validation.Score

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let parse src =
  Check.elaborate (Mutsamp_robust.Error.ok_exn (Parser.design_result src))

let and_gate = parse
    {|design and2 is
  input a : bit;
  input b : bit;
  output y : bit;
begin
  y := a and b;
end design;|}

let fsm = parse
    {|design fsm is
  input go : bit;
  output y : bit;
  reg s : unsigned(2) := 0;
begin
  y := '0';
  if s = 3 then
    y := '1';
    s := 0;
  else
    if go = '1' then
      s := s + 1;
    end if;
  end if;
end design;|}

let test_vectorgen_kills_all_nonequivalent () =
  let mutants = Generate.all and_gate in
  let outcome = Vectorgen.generate and_gate mutants in
  (* After the directed phase every mutant is killed or proven
     equivalent: nothing unknown on a 2-input combinational design. *)
  check_int "no unknown" 0 (List.length outcome.Vectorgen.unknown);
  check_int "partition"
    (List.length mutants)
    (List.length outcome.Vectorgen.killed + List.length outcome.Vectorgen.equivalent)

let test_vectorgen_test_set_really_kills () =
  let mutants = Generate.all and_gate in
  let outcome = Vectorgen.generate and_gate mutants in
  let runner = Kill.make and_gate mutants in
  let flags = Kill.killed_set runner outcome.Vectorgen.test_set in
  List.iter
    (fun i -> check_bool "killed claim verified" true flags.(i))
    outcome.Vectorgen.killed;
  List.iter
    (fun i -> check_bool "equivalent never killed" false flags.(i))
    outcome.Vectorgen.equivalent

let test_vectorgen_deterministic () =
  let mutants = Generate.all and_gate in
  let o1 = Vectorgen.generate and_gate mutants in
  let o2 = Vectorgen.generate and_gate mutants in
  check_bool "same test set" true (o1.Vectorgen.test_set = o2.Vectorgen.test_set);
  check_bool "same kills" true (o1.Vectorgen.killed = o2.Vectorgen.killed)

let test_vectorgen_seed_changes_result () =
  let mutants = Generate.all and_gate in
  let c1 = { Vectorgen.default_config with Vectorgen.seed = 1 } in
  let c2 = { Vectorgen.default_config with Vectorgen.seed = 2 } in
  let o1 = Vectorgen.generate ~config:c1 and_gate mutants in
  let o2 = Vectorgen.generate ~config:c2 and_gate mutants in
  (* Different seeds usually give different test sets (kills can match). *)
  check_bool "test sets differ" true
    (o1.Vectorgen.test_set <> o2.Vectorgen.test_set
    || o1.Vectorgen.candidates_tried <> o2.Vectorgen.candidates_tried)

let test_vectorgen_sequential_directed_phase () =
  let mutants = Generate.all fsm in
  let config =
    { Vectorgen.default_config with Vectorgen.max_stall = 10; sequence_length = 4 }
  in
  let outcome = Vectorgen.generate ~config fsm mutants in
  (* The weak random phase leaves survivors for the directed phase; the
     exact checker resolves every one of them on this small FSM. *)
  check_int "no unknown" 0 (List.length outcome.Vectorgen.unknown);
  check_bool "some killed" true (List.length outcome.Vectorgen.killed > 0)

let test_vectorgen_no_directed_leaves_unknown () =
  let mutants = Generate.all fsm in
  let config =
    { Vectorgen.default_config with Vectorgen.max_stall = 1; directed = false }
  in
  let outcome = Vectorgen.generate ~config fsm mutants in
  check_int "nothing proven equivalent" 0 (List.length outcome.Vectorgen.equivalent);
  check_int "partition"
    (List.length mutants)
    (List.length outcome.Vectorgen.killed + List.length outcome.Vectorgen.unknown)

let test_vectorgen_total_vectors () =
  let mutants = Generate.all and_gate in
  let outcome = Vectorgen.generate and_gate mutants in
  check_int "total matches flatten"
    (List.length (Vectorgen.flatten_test_set outcome))
    outcome.Vectorgen.total_vectors

let test_vectorgen_minimize_shrinks_or_equal () =
  let mutants = Generate.all fsm in
  let base = { Vectorgen.default_config with Vectorgen.max_stall = 60 } in
  let with_min = Vectorgen.generate ~config:base fsm mutants in
  let without_min =
    Vectorgen.generate ~config:{ base with Vectorgen.minimize = false } fsm mutants
  in
  check_bool "minimised not longer" true
    (with_min.Vectorgen.total_vectors <= without_min.Vectorgen.total_vectors);
  (* Same kill set either way. *)
  check_bool "same kills" true
    (with_min.Vectorgen.killed = without_min.Vectorgen.killed)

let test_vectorgen_minimized_set_still_kills () =
  let mutants = Generate.all fsm in
  let outcome = Vectorgen.generate fsm mutants in
  let runner = Kill.make fsm mutants in
  let flags = Kill.killed_set runner outcome.Vectorgen.test_set in
  List.iter (fun i -> check_bool "still killed after set cover" true flags.(i))
    outcome.Vectorgen.killed

let test_vectorgen_max_vectors_cap () =
  let mutants = Generate.all fsm in
  let config =
    { Vectorgen.default_config with Vectorgen.max_vectors = 8; sequence_length = 4 }
  in
  let outcome = Vectorgen.generate ~config fsm mutants in
  check_bool "cap respected" true (outcome.Vectorgen.total_vectors <= 8)

(* ------------------------------------------------------------------ *)
(* Score                                                              *)
(* ------------------------------------------------------------------ *)

let test_score_formula () =
  let s = Score.make ~total:100 ~killed:60 ~equivalent:20 in
  Alcotest.(check (float 1e-9)) "60/80" 75. s.Score.score_percent

let test_score_full () =
  let s = Score.make ~total:10 ~killed:10 ~equivalent:0 in
  Alcotest.(check (float 1e-9)) "100%" 100. s.Score.score_percent

let test_score_all_equivalent () =
  let s = Score.make ~total:5 ~killed:0 ~equivalent:5 in
  Alcotest.(check (float 1e-9)) "degenerate 100" 100. s.Score.score_percent

let test_score_invalid () =
  (try
     ignore (Score.make ~total:5 ~killed:4 ~equivalent:3);
     Alcotest.fail "should reject"
   with Invalid_argument _ -> ())

let test_score_of_test_set_matches_outcome () =
  let mutants = Generate.all and_gate in
  let outcome = Vectorgen.generate and_gate mutants in
  let s =
    Score.of_test_set and_gate mutants ~equivalent:outcome.Vectorgen.equivalent
      outcome.Vectorgen.test_set
  in
  check_int "killed agrees" (List.length outcome.Vectorgen.killed) s.Score.killed;
  check_int "equivalent agrees"
    (List.length outcome.Vectorgen.equivalent)
    s.Score.equivalent;
  Alcotest.(check (float 1e-9)) "MS is 100 on this design" 100. s.Score.score_percent

let suite =
  [
    ( "validation.vectorgen",
      [
        Alcotest.test_case "kills all nonequivalent" `Quick test_vectorgen_kills_all_nonequivalent;
        Alcotest.test_case "test set verified" `Quick test_vectorgen_test_set_really_kills;
        Alcotest.test_case "deterministic" `Quick test_vectorgen_deterministic;
        Alcotest.test_case "seed sensitivity" `Quick test_vectorgen_seed_changes_result;
        Alcotest.test_case "sequential directed" `Quick test_vectorgen_sequential_directed_phase;
        Alcotest.test_case "no directed -> unknown" `Quick test_vectorgen_no_directed_leaves_unknown;
        Alcotest.test_case "total vectors" `Quick test_vectorgen_total_vectors;
        Alcotest.test_case "minimize shrinks" `Quick test_vectorgen_minimize_shrinks_or_equal;
        Alcotest.test_case "minimized still kills" `Quick test_vectorgen_minimized_set_still_kills;
        Alcotest.test_case "max vectors cap" `Quick test_vectorgen_max_vectors_cap;
      ] );
    ( "validation.score",
      [
        Alcotest.test_case "formula" `Quick test_score_formula;
        Alcotest.test_case "full kill" `Quick test_score_full;
        Alcotest.test_case "all equivalent" `Quick test_score_all_equivalent;
        Alcotest.test_case "invalid counts" `Quick test_score_invalid;
        Alcotest.test_case "of_test_set" `Quick test_score_of_test_set_matches_outcome;
      ] );
  ]
