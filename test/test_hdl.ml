(* Tests for lib/hdl: lexer, parser round-trips, checker, simulator. *)

module Bitvec = Mutsamp_util.Bitvec
module Ast = Mutsamp_hdl.Ast
module Lexer = Mutsamp_hdl.Lexer
module Parser = Mutsamp_hdl.Parser
module Pretty = Mutsamp_hdl.Pretty
module Check = Mutsamp_hdl.Check
module Sim = Mutsamp_hdl.Sim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let bv w v = Bitvec.make ~width:w v

(* A small synchronous counter with an enable and wrap output. *)
let counter_src =
  {|
-- 3-bit counter with enable
design counter is
  input en : bit;
  output q : unsigned(3);
  output wrap : bit;
  reg count : unsigned(3) := 0;
begin
  q := count;
  wrap := '0';
  if en = '1' then
    if count = 7 then
      count := 0;
      wrap := '1';
    else
      count := count + 1;
    end if;
  end if;
end design;
|}

(* Purely combinational majority-of-three with an xor side output. *)
let major_src =
  {|
design major is
  input a : bit;
  input b : bit;
  input c : bit;
  output m : bit;
  output p : bit;
begin
  m := (a and b) or (a and c) or (b and c);
  p := a xor b xor c;
end design;
|}

(* Unwrap the result-typed parser entry point: these tests feed known
   good sources, so an error is a straight failure. *)
let design_of_string src =
  Mutsamp_robust.Error.ok_exn (Parser.design_result src)

let parse_design src = Check.elaborate (design_of_string src)

(* ------------------------------------------------------------------ *)
(* Lexer                                                              *)
(* ------------------------------------------------------------------ *)

let test_lexer_tokens () =
  let toks = Lexer.tokenize "x := y + 5'b00101; -- comment\nz := '1';" in
  check_int "token count" 11 (Array.length toks);
  (match toks.(0) with
   | Lexer.IDENT "x", 1 -> ()
   | _ -> Alcotest.fail "expected IDENT x at line 1");
  (match toks.(2) with
   | Lexer.IDENT "y", _ -> ()
   | _ -> Alcotest.fail "expected IDENT y");
  (match toks.(4) with
   | Lexer.SIZED (5, 5), _ -> ()
   | _ -> Alcotest.fail "expected sized literal 5'b00101");
  (match toks.(8) with
   | Lexer.SIZED (1, 1), 2 -> ()
   | _ -> Alcotest.fail "expected '1' bit literal at line 2")

let test_lexer_line_numbers () =
  let toks = Lexer.tokenize "a\nb\nc" in
  (match toks.(2) with
   | Lexer.IDENT "c", 3 -> ()
   | _ -> Alcotest.fail "expected c at line 3")

let test_lexer_bad_char () =
  Alcotest.check_raises "illegal" (Lexer.Lex_error "line 1: illegal character '$'")
    (fun () -> ignore (Lexer.tokenize "a $ b"))

let test_lexer_bad_sized () =
  Alcotest.check_raises "width mismatch"
    (Lexer.Lex_error "line 1: sized literal: 3 bits given, width says 4")
    (fun () -> ignore (Lexer.tokenize "4'b101"))

let test_lexer_keywords_not_idents () =
  let toks = Lexer.tokenize "and AND" in
  (match toks.(0), toks.(1) with
   | (Lexer.KW "and", _), (Lexer.KW "and", _) -> ()
   | _ -> Alcotest.fail "keywords are case-insensitive")

(* ------------------------------------------------------------------ *)
(* Parser                                                             *)
(* ------------------------------------------------------------------ *)

let test_parse_counter () =
  let d = design_of_string counter_src in
  Alcotest.(check string) "name" "counter" d.Ast.name;
  check_int "decls" 4 (List.length d.Ast.decls);
  check_int "inputs" 1 (List.length (Ast.inputs d));
  check_int "outputs" 2 (List.length (Ast.outputs d));
  check_int "regs" 1 (List.length (Ast.regs d))

let test_parse_precedence () =
  (* "a and b = c" must parse as "a and (b = c)". *)
  let e = Parser.expr_of_string "a and b = c" in
  (match e with
   | Ast.Binop (Ast.And, Ast.Ref "a", Ast.Binop (Ast.Eq, Ast.Ref "b", Ast.Ref "c")) -> ()
   | _ -> Alcotest.fail "logical binds looser than relational");
  let e2 = Parser.expr_of_string "a + b & c" in
  (match e2 with
   | Ast.Binop (Ast.Add, Ast.Ref "a", Ast.Concat (Ast.Ref "b", Ast.Ref "c")) -> ()
   | _ -> Alcotest.fail "concat binds tighter than additive")

let test_parse_elsif_desugars () =
  let d =
    design_of_string
      {|
design t is
  input a : bit;
  output y : unsigned(2);
begin
  if a = '1' then
    y := 1;
  elsif a = '0' then
    y := 2;
  else
    y := 3;
  end if;
end design;
|}
  in
  (match d.Ast.body with
   | [ Ast.If (_, _, [ Ast.If (_, _, _) ]) ] -> ()
   | _ -> Alcotest.fail "elsif should nest")

let test_parse_case_choices () =
  let d =
    design_of_string
      {|
design t is
  input s : unsigned(2);
  output y : bit;
begin
  case s is
    when 0 | 1 =>
      y := '1';
    when others =>
      y := '0';
  end case;
end design;
|}
  in
  (match d.Ast.body with
   | [ Ast.Case (_, [ (choices, _) ], Some _) ] -> check_int "choices" 2 (List.length choices)
   | _ -> Alcotest.fail "case shape")

let test_parse_error_reports_line () =
  (match Parser.design_result "design t is\nbogus\nbegin\nend design;" with
   | Ok _ -> Alcotest.fail "should not parse"
   | Error (Mutsamp_robust.Error.Parse_error { loc; _ }) ->
     check_bool "carries line" true (loc.Mutsamp_robust.Error.line <> None)
   | Error e ->
     Alcotest.fail ("wrong error: " ^ Mutsamp_robust.Error.to_string e))

let test_parse_pretty_roundtrip_designs () =
  List.iter
    (fun src ->
      let d = parse_design src in
      let d2 = Check.elaborate (design_of_string (Pretty.design d)) in
      check_bool "roundtrip equal" true (Ast.equal_design d d2))
    [ counter_src; major_src ]

(* Random elaborated expressions over a fixed context, for the
   parse-pretty round-trip and the simulator cross-check. *)

let ctx_decls : Ast.decl list =
  [
    { Ast.name = "a"; width = 4; kind = Ast.Input };
    { Ast.name = "b"; width = 4; kind = Ast.Input };
    { Ast.name = "c"; width = 1; kind = Ast.Input };
    { Ast.name = "y"; width = 4; kind = Ast.Output };
    { Ast.name = "z"; width = 1; kind = Ast.Output };
  ]

(* Generates an expression of the requested width, using only sized
   literals so the result is already elaborated. *)
let rec gen_expr_width ~fuel width st =
  let open QCheck.Gen in
  let leaf =
    if width = 4 then
      oneof
        [ return (Ast.Ref "a"); return (Ast.Ref "b");
          (int_range 0 15 >|= fun v -> Ast.const ~width:4 v) ]
    else
      oneof
        [ return (Ast.Ref "c");
          (int_range 0 1 >|= fun v -> Ast.const ~width:1 v) ]
  in
  if fuel = 0 then leaf st
  else
    let sub = gen_expr_width ~fuel:(fuel - 1) in
    let arms =
      [
        leaf;
        (sub width >|= fun e -> Ast.Unop (Ast.Not, e));
        ( pair (oneofl Ast.[ Add; Sub; And; Or; Xor; Nand; Nor; Xnor ])
            (pair (sub width) (sub width))
        >|= fun (op, (x, y)) -> Ast.Binop (op, x, y) );
      ]
      @
      (if width = 1 then
         [
           ( pair (oneofl Ast.[ Eq; Neq; Lt; Le; Gt; Ge ]) (pair (sub 4) (sub 4))
           >|= fun (op, (x, y)) -> Ast.Binop (op, x, y) );
           (pair (sub 4) (int_range 0 3) >|= fun (e, i) -> Ast.Bit (e, i));
         ]
       else
         [
           (sub 1 >|= fun e -> Ast.Resize (e, 4));
           ( pair (sub 4) (int_range 0 2)
           >|= fun (e, lo) -> Ast.Resize (Ast.Slice (e, lo + 1, lo), 4) );
         ])
    in
    oneof arms st

let arb_expr width =
  QCheck.make ~print:Pretty.expr (gen_expr_width ~fuel:4 width)

let prop_expr_roundtrip width =
  QCheck.Test.make
    ~name:(Printf.sprintf "parse(pretty(e)) = e (width %d)" width)
    ~count:400 (arb_expr width)
    (fun e -> Ast.equal_expr (Parser.expr_of_string (Pretty.expr e)) e)

(* Reference evaluator: straightforward Bitvec interpretation, entirely
   independent of the closure-compiled simulator. *)
let rec eval_ref env = function
  | Ast.Const l -> bv (Option.get l.Ast.width) l.Ast.value
  | Ast.Ref name -> List.assoc name env
  | Ast.Unop (Ast.Not, e) -> Bitvec.lognot (eval_ref env e)
  | Ast.Binop (op, a, b) ->
    let va = eval_ref env a and vb = eval_ref env b in
    let bool_bv p = if p then bv 1 1 else bv 1 0 in
    (match op with
     | Ast.Add -> Bitvec.add va vb
     | Ast.Sub -> Bitvec.sub va vb
     | Ast.And -> Bitvec.logand va vb
     | Ast.Or -> Bitvec.logor va vb
     | Ast.Xor -> Bitvec.logxor va vb
     | Ast.Nand -> Bitvec.lognot (Bitvec.logand va vb)
     | Ast.Nor -> Bitvec.lognot (Bitvec.logor va vb)
     | Ast.Xnor -> Bitvec.lognot (Bitvec.logxor va vb)
     | Ast.Eq -> bool_bv (Bitvec.equal va vb)
     | Ast.Neq -> bool_bv (not (Bitvec.equal va vb))
     | Ast.Lt -> bool_bv (Bitvec.lt va vb)
     | Ast.Le -> bool_bv (Bitvec.le va vb)
     | Ast.Gt -> bool_bv (Bitvec.lt vb va)
     | Ast.Ge -> bool_bv (Bitvec.le vb va))
  | Ast.Bit (e, i) -> bv 1 (if Bitvec.bit (eval_ref env e) i then 1 else 0)
  | Ast.Slice (e, hi, lo) -> Bitvec.slice (eval_ref env e) ~hi ~lo
  | Ast.Concat (a, b) -> Bitvec.concat (eval_ref env a) (eval_ref env b)
  | Ast.Resize (e, w) -> Bitvec.resize (eval_ref env e) w

let prop_sim_matches_reference width =
  let out_name = if width = 4 then "y" else "z" in
  let gen =
    QCheck.Gen.(
      pair
        (gen_expr_width ~fuel:4 width)
        (triple (int_range 0 15) (int_range 0 15) (int_range 0 1)))
  in
  let print (e, (a, b, c)) = Printf.sprintf "%s with a=%d b=%d c=%d" (Pretty.expr e) a b c in
  QCheck.Test.make
    ~name:(Printf.sprintf "compiled sim matches reference eval (width %d)" width)
    ~count:400 (QCheck.make ~print gen)
    (fun (e, (a, b, c)) ->
      let d = { Ast.name = "t"; decls = ctx_decls; body = [ Ast.Assign (out_name, e) ] } in
      let stim = [ ("a", bv 4 a); ("b", bv 4 b); ("c", bv 1 c) ] in
      let outs = List.concat (Sim.run d [ stim ]) in
      let env = stim in
      Bitvec.equal (List.assoc out_name outs) (eval_ref env e))

(* ------------------------------------------------------------------ *)
(* Check                                                              *)
(* ------------------------------------------------------------------ *)

let expect_check_error src =
  match Check.elaborate (design_of_string src) with
  | exception Check.Check_error _ -> ()
  | _ -> Alcotest.fail "expected Check_error"

let test_check_sizes_literals () =
  let d = parse_design counter_src in
  check_bool "elaborated" true (Check.is_elaborated d)

let test_check_duplicate_decl () =
  expect_check_error
    "design t is input a : bit; input a : bit; output y : bit; begin y := a; end design;"

let test_check_undeclared () =
  expect_check_error
    "design t is input a : bit; output y : bit; begin y := zz; end design;"

let test_check_width_mismatch () =
  expect_check_error
    "design t is input a : unsigned(4); output y : bit; begin y := a; end design;"

let test_check_output_write_only () =
  expect_check_error
    "design t is input a : bit; output y : bit; begin y := a; y := y and a; end design;"

let test_check_assign_to_input () =
  expect_check_error
    "design t is input a : bit; output y : bit; begin a := '1'; y := '0'; end design;"

let test_check_literal_too_big () =
  expect_check_error
    "design t is input a : unsigned(2); output y : bit; begin y := a = 9; end design;"

let test_check_case_incomplete () =
  expect_check_error
    {|design t is input s : unsigned(2); output y : bit;
      begin case s is when 0 => y := '1'; end case; end design;|}

let test_check_case_duplicate () =
  expect_check_error
    {|design t is input s : unsigned(2); output y : bit;
      begin case s is when 1 | 1 => y := '1'; when others => null; end case; end design;|}

let test_check_case_full_coverage_ok () =
  let d =
    parse_design
      {|design t is input s : bit; output y : bit;
        begin case s is when 0 => y := '1'; when 1 => y := '0'; end case; end design;|}
  in
  check_bool "ok" true (Check.is_elaborated d)

let test_check_no_inputs_rejected () =
  expect_check_error "design t is output y : bit; begin y := '1'; end design;"

let test_check_unsized_both_sides () =
  expect_check_error
    "design t is input a : bit; output y : bit; begin y := 1 = 1; end design;"

let test_check_more_errors () =
  (* A batch of rejection paths, one-line each. *)
  List.iter expect_check_error
    [
      (* bit index out of range *)
      "design t is input a : unsigned(3); output y : bit; begin y := a[5]; end design;";
      (* slice reversed *)
      "design t is input a : unsigned(4); output y : unsigned(2); begin y := a[1:2]; end design;";
      (* slice beyond width *)
      "design t is input a : unsigned(4); output y : unsigned(2); begin y := a[4:3]; end design;";
      (* reg reset value too large *)
      "design t is input a : bit; output y : bit; reg r : unsigned(2) := 9; begin y := a; end design;";
      (* const value too large *)
      "design t is input a : bit; output y : bit; const K : unsigned(2) := 5; begin y := a; end design;";
      (* assignment to constant *)
      "design t is input a : bit; output y : bit; const K : bit := 0; begin K := a; y := a; end design;";
      (* if condition must be 1 bit *)
      "design t is input a : unsigned(2); output y : bit; begin if a then y := '1'; end if; end design;";
      (* case choice too large for scrutinee *)
      {|design t is input s : unsigned(2); output y : bit;
        begin case s is when 9 => y := '1'; when others => null; end case; end design;|};
      (* concat operand unsized *)
      "design t is input a : bit; output y : unsigned(2); begin y := a & 1; end design;";
      (* bit-select of an unsized literal *)
      "design t is input a : bit; output y : bit; begin y := 5[0]; end design;";
    ]

let test_parse_more_errors () =
  let expect_parse_error src =
    match Parser.design_result src with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail ("should not parse: " ^ src)
  in
  List.iter expect_parse_error
    [
      "design t is begin end";  (* missing 'design;' tail *)
      "design t is input a bit; begin end design;";  (* missing ':' *)
      "design t is input a : bit; begin a = '1'; end design;";  (* '=' not ':=' *)
      "design t is input a : bit; begin y := (a; end design;";  (* unbalanced paren *)
      "design t is input a : bit; begin case a is when => null; end case; end design;";
      "design t is input a : unsigned(0); begin null; end design;";  (* width 0 *)
    ]

let test_check_combinational () =
  check_bool "major" true (Check.is_combinational (parse_design major_src));
  check_bool "counter" false (Check.is_combinational (parse_design counter_src))

(* ------------------------------------------------------------------ *)
(* Sim                                                                *)
(* ------------------------------------------------------------------ *)

let test_sim_counter_counts () =
  let d = parse_design counter_src in
  let en = [ ("en", bv 1 1) ] in
  let outs = Sim.run d [ en; en; en ] in
  let q_of obs = Bitvec.to_int (List.assoc "q" obs) in
  (match outs with
   | [ o1; o2; o3 ] ->
     check_int "cycle1 shows reset value" 0 (q_of o1);
     check_int "cycle2" 1 (q_of o2);
     check_int "cycle3" 2 (q_of o3)
   | _ -> Alcotest.fail "expected three observations")

let test_sim_counter_hold_when_disabled () =
  let d = parse_design counter_src in
  let en = [ ("en", bv 1 1) ] and dis = [ ("en", bv 1 0) ] in
  let outs = Sim.run d [ en; dis; dis; en ] in
  let qs = List.map (fun o -> Bitvec.to_int (List.assoc "q" o)) outs in
  Alcotest.(check (list int)) "holds at 1" [ 0; 1; 1; 1 ] qs

let test_sim_counter_wraps () =
  let d = parse_design counter_src in
  let en = [ ("en", bv 1 1) ] in
  let outs = Sim.run d (List.init 9 (fun _ -> en)) in
  let last = List.nth outs 8 in
  check_int "wrapped to zero" 0 (Bitvec.to_int (List.assoc "q" last));
  let cycle8 = List.nth outs 7 in
  check_int "wrap pulse" 1 (Bitvec.to_int (List.assoc "wrap" cycle8))

let test_sim_reg_reads_old_value () =
  (* A register swap executes with pre-cycle semantics. *)
  let d =
    parse_design
      {|design swap is
  input go : bit;
  output ya : unsigned(2);
  output yb : unsigned(2);
  reg ra : unsigned(2) := 1;
  reg rb : unsigned(2) := 2;
begin
  ya := ra;
  yb := rb;
  if go = '1' then
    ra := rb;
    rb := ra;
  end if;
end design;|}
  in
  let go = [ ("go", bv 1 1) ] in
  let outs = Sim.run d [ go; go ] in
  (match outs with
   | [ _; o2 ] ->
     check_int "ra got old rb" 2 (Bitvec.to_int (List.assoc "ya" o2));
     check_int "rb got old ra" 1 (Bitvec.to_int (List.assoc "yb" o2))
   | _ -> Alcotest.fail "two observations expected")

let test_sim_var_immediate () =
  let d =
    parse_design
      {|design v is
  input a : unsigned(3);
  output y : unsigned(3);
  var t : unsigned(3);
begin
  t := a + 1;
  t := t + 1;
  y := t;
end design;|}
  in
  let outs = Sim.run d [ [ ("a", bv 3 2) ] ] in
  check_int "vars update immediately" 4 (Bitvec.to_int (List.assoc "y" (List.hd outs)))

let test_sim_missing_input () =
  let d = parse_design major_src in
  (try
     ignore (Sim.run d [ [ ("a", bv 1 0); ("b", bv 1 0) ] ]);
     Alcotest.fail "should raise"
   with Sim.Sim_error _ -> ())

let test_sim_unknown_input () =
  let d = parse_design major_src in
  (try
     ignore
       (Sim.run d [ [ ("a", bv 1 0); ("b", bv 1 0); ("c", bv 1 0); ("zz", bv 1 0) ] ]);
     Alcotest.fail "should raise"
   with Sim.Sim_error _ -> ())

let test_sim_major_truth_table () =
  let d = parse_design major_src in
  for v = 0 to 7 do
    let a = (v lsr 2) land 1 and b = (v lsr 1) land 1 and c = v land 1 in
    let stim = [ ("a", bv 1 a); ("b", bv 1 b); ("c", bv 1 c) ] in
    let outs = List.hd (Sim.run d [ stim ]) in
    check_int
      (Printf.sprintf "major(%d%d%d)" a b c)
      (if a + b + c >= 2 then 1 else 0)
      (Bitvec.to_int (List.assoc "m" outs));
    check_int
      (Printf.sprintf "parity(%d%d%d)" a b c)
      ((a + b + c) land 1)
      (Bitvec.to_int (List.assoc "p" outs))
  done

let test_sim_reset_restores () =
  let d = parse_design counter_src in
  let t = Sim.create d in
  Sim.reset t;
  ignore (Sim.step t [ ("en", bv 1 1) ]);
  ignore (Sim.step t [ ("en", bv 1 1) ]);
  Sim.reset t;
  let o = Sim.step t [ ("en", bv 1 0) ] in
  check_int "back to reset" 0 (Bitvec.to_int (List.assoc "q" o))

let test_sim_rejects_unelaborated () =
  let raw = design_of_string counter_src in
  (try
     ignore (Sim.create raw);
     Alcotest.fail "should reject unelaborated design"
   with Sim.Sim_error _ -> ())

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ( "hdl.lexer",
      [
        Alcotest.test_case "tokens" `Quick test_lexer_tokens;
        Alcotest.test_case "line numbers" `Quick test_lexer_line_numbers;
        Alcotest.test_case "bad char" `Quick test_lexer_bad_char;
        Alcotest.test_case "bad sized literal" `Quick test_lexer_bad_sized;
        Alcotest.test_case "keywords case-insensitive" `Quick test_lexer_keywords_not_idents;
      ] );
    ( "hdl.parser",
      [
        Alcotest.test_case "counter" `Quick test_parse_counter;
        Alcotest.test_case "precedence" `Quick test_parse_precedence;
        Alcotest.test_case "elsif desugars" `Quick test_parse_elsif_desugars;
        Alcotest.test_case "case choices" `Quick test_parse_case_choices;
        Alcotest.test_case "error reports line" `Quick test_parse_error_reports_line;
        Alcotest.test_case "design roundtrip" `Quick test_parse_pretty_roundtrip_designs;
        q (prop_expr_roundtrip 4);
        q (prop_expr_roundtrip 1);
      ] );
    ( "hdl.check",
      [
        Alcotest.test_case "sizes literals" `Quick test_check_sizes_literals;
        Alcotest.test_case "duplicate decl" `Quick test_check_duplicate_decl;
        Alcotest.test_case "undeclared name" `Quick test_check_undeclared;
        Alcotest.test_case "width mismatch" `Quick test_check_width_mismatch;
        Alcotest.test_case "output write-only" `Quick test_check_output_write_only;
        Alcotest.test_case "assign to input" `Quick test_check_assign_to_input;
        Alcotest.test_case "literal too big" `Quick test_check_literal_too_big;
        Alcotest.test_case "case incomplete" `Quick test_check_case_incomplete;
        Alcotest.test_case "case duplicate" `Quick test_check_case_duplicate;
        Alcotest.test_case "case full coverage" `Quick test_check_case_full_coverage_ok;
        Alcotest.test_case "more check errors" `Quick test_check_more_errors;
        Alcotest.test_case "more parse errors" `Quick test_parse_more_errors;
        Alcotest.test_case "no inputs rejected" `Quick test_check_no_inputs_rejected;
        Alcotest.test_case "unsized both sides" `Quick test_check_unsized_both_sides;
        Alcotest.test_case "combinational predicate" `Quick test_check_combinational;
      ] );
    ( "hdl.sim",
      [
        Alcotest.test_case "counter counts" `Quick test_sim_counter_counts;
        Alcotest.test_case "counter hold" `Quick test_sim_counter_hold_when_disabled;
        Alcotest.test_case "counter wraps" `Quick test_sim_counter_wraps;
        Alcotest.test_case "reg pre-cycle reads" `Quick test_sim_reg_reads_old_value;
        Alcotest.test_case "var immediate" `Quick test_sim_var_immediate;
        Alcotest.test_case "missing input" `Quick test_sim_missing_input;
        Alcotest.test_case "unknown input" `Quick test_sim_unknown_input;
        Alcotest.test_case "majority truth table" `Quick test_sim_major_truth_table;
        Alcotest.test_case "reset restores" `Quick test_sim_reset_restores;
        Alcotest.test_case "rejects unelaborated" `Quick test_sim_rejects_unelaborated;
        q (prop_sim_matches_reference 4);
        q (prop_sim_matches_reference 1);
      ] );
  ]
