(* Aggregated alcotest runner for every library in the repository. *)

let () = Alcotest.run "mutsamp" (Test_util.suite @ Test_hdl.suite @ Test_mutation.suite @ Test_netlist.suite @ Test_synth.suite @ Test_sat.suite @ Test_fault.suite @ Test_atpg.suite @ Test_circuits.suite @ Test_validation.suite @ Test_sampling.suite @ Test_core.suite @ Test_obs.suite @ Test_robust.suite @ Test_extras.suite @ Test_wide.suite @ Test_engines.suite @ Test_analysis.suite @ Test_exec.suite @ Test_store.suite @ Test_serve.suite)
