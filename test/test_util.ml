(* Tests for lib/util: PRNG determinism, bit-vector algebra, stats. *)

module Prng = Mutsamp_util.Prng
module Bitvec = Mutsamp_util.Bitvec
module Stats = Mutsamp_util.Stats
module Table = Mutsamp_util.Table

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Prng                                                               *)
(* ------------------------------------------------------------------ *)

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    check_bool "same stream" true (Prng.bits64 a = Prng.bits64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Prng.bits64 a <> Prng.bits64 b then differs := true
  done;
  check_bool "different seeds diverge" true !differs

let test_prng_int_range () =
  let t = Prng.create 7 in
  for _ = 1 to 1000 do
    let v = Prng.int t 13 in
    check_bool "in range" true (v >= 0 && v < 13)
  done

let test_prng_int_bound_one () =
  let t = Prng.create 3 in
  for _ = 1 to 20 do
    check_int "bound 1 gives 0" 0 (Prng.int t 1)
  done

let test_prng_int_rejects_nonpositive () =
  let t = Prng.create 3 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int t 0))

let test_prng_copy_independent () =
  let a = Prng.create 5 in
  ignore (Prng.bits64 a);
  let b = Prng.copy a in
  check_bool "copy continues identically" true (Prng.bits64 a = Prng.bits64 b);
  ignore (Prng.bits64 a);
  (* b is now one step behind; advancing b once resynchronises. *)
  check_bool "streams independent" true (Prng.bits64 a <> Prng.bits64 b)

let test_prng_split () =
  let a = Prng.create 11 in
  let b = Prng.split a in
  check_bool "split produces distinct stream" true (Prng.bits64 a <> Prng.bits64 b)

let test_prng_float_range () =
  let t = Prng.create 9 in
  for _ = 1 to 1000 do
    let f = Prng.float t in
    check_bool "float in [0,1)" true (f >= 0. && f < 1.)
  done

let test_prng_pick () =
  let t = Prng.create 13 in
  let arr = [| 1; 2; 3 |] in
  for _ = 1 to 100 do
    let chosen = Prng.pick t arr in
    check_bool "pick member" true (Array.exists (fun x -> x = chosen) arr)
  done;
  Alcotest.check_raises "empty pick" (Invalid_argument "Prng.pick: empty array")
    (fun () -> ignore (Prng.pick t [||]))

let test_prng_shuffle_permutation () =
  let t = Prng.create 17 in
  let arr = Array.init 50 (fun i -> i) in
  Prng.shuffle t arr;
  let sorted = Array.copy arr in
  Array.sort Stdlib.compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

let test_prng_sample_without_replacement () =
  let t = Prng.create 23 in
  let arr = Array.init 20 (fun i -> i) in
  let s = Prng.sample_without_replacement t 8 arr in
  check_int "size" 8 (Array.length s);
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun x ->
      check_bool "distinct" false (Hashtbl.mem seen x);
      Hashtbl.add seen x ();
      check_bool "member" true (x >= 0 && x < 20))
    s

let test_prng_sample_full () =
  let t = Prng.create 29 in
  let arr = [| 1; 2; 3; 4 |] in
  let s = Prng.sample_without_replacement t 4 arr in
  let sorted = Array.copy s in
  Array.sort Stdlib.compare sorted;
  Alcotest.(check (array int)) "full sample is permutation" arr sorted

(* ------------------------------------------------------------------ *)
(* Bitvec                                                             *)
(* ------------------------------------------------------------------ *)

let bv w v = Bitvec.make ~width:w v

let test_bitvec_make_truncates () =
  check_int "truncated" 0b101 (Bitvec.to_int (bv 3 0b11101))

let test_bitvec_make_rejects_bad_width () =
  Alcotest.check_raises "width 0"
    (Invalid_argument "Bitvec.make: width 0 not positive")
    (fun () -> ignore (bv 0 1))

let test_bitvec_wide () =
  (* Widths above the native-int range are legal; only to_int refuses. *)
  let v = Bitvec.init 100 (fun i -> i mod 2 = 1) in
  check_int "width" 100 (Bitvec.width v);
  check_bool "bit 99" true (Bitvec.bit v 99);
  check_bool "bit 98" false (Bitvec.bit v 98);
  Alcotest.check_raises "to_int refuses wide"
    (Invalid_argument "Bitvec.to_int: width exceeds 62-bit integers")
    (fun () -> ignore (Bitvec.to_int v))

let test_bitvec_add_wraps () =
  check_int "wrap" 0 (Bitvec.to_int (Bitvec.add (bv 4 15) (bv 4 1)));
  check_int "plain" 9 (Bitvec.to_int (Bitvec.add (bv 4 4) (bv 4 5)))

let test_bitvec_sub_wraps () =
  check_int "wrap" 15 (Bitvec.to_int (Bitvec.sub (bv 4 0) (bv 4 1)))

let test_bitvec_logic () =
  check_int "and" 0b100 (Bitvec.to_int (Bitvec.logand (bv 3 0b110) (bv 3 0b101)));
  check_int "or" 0b111 (Bitvec.to_int (Bitvec.logor (bv 3 0b110) (bv 3 0b101)));
  check_int "xor" 0b011 (Bitvec.to_int (Bitvec.logxor (bv 3 0b110) (bv 3 0b101)));
  check_int "not" 0b001 (Bitvec.to_int (Bitvec.lognot (bv 3 0b110)))

let test_bitvec_width_mismatch () =
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Bitvec.add: width mismatch (3 vs 4)")
    (fun () -> ignore (Bitvec.add (bv 3 1) (bv 4 1)))

let test_bitvec_compare_unsigned () =
  check_bool "lt" true (Bitvec.lt (bv 4 3) (bv 4 12));
  check_bool "le eq" true (Bitvec.le (bv 4 5) (bv 4 5));
  check_bool "not lt" false (Bitvec.lt (bv 4 12) (bv 4 3))

let test_bitvec_bits () =
  let v = bv 5 0b10110 in
  check_bool "bit0" false (Bitvec.bit v 0);
  check_bool "bit1" true (Bitvec.bit v 1);
  check_bool "bit4" true (Bitvec.bit v 4);
  let v2 = Bitvec.set_bit v 0 true in
  check_int "set" 0b10111 (Bitvec.to_int v2)

let test_bitvec_slice_concat () =
  let v = bv 8 0b10110100 in
  check_int "slice" 0b101 (Bitvec.to_int (Bitvec.slice v ~hi:4 ~lo:2));
  let c = Bitvec.concat (bv 3 0b101) (bv 2 0b10) in
  check_int "concat" 0b10110 (Bitvec.to_int c);
  check_int "concat width" 5 (Bitvec.width c)

let test_bitvec_resize () =
  check_int "extend" 0b0101 (Bitvec.to_int (Bitvec.resize (bv 3 0b101) 6));
  check_int "truncate" 0b01 (Bitvec.to_int (Bitvec.resize (bv 3 0b101) 2))

let test_bitvec_to_string () =
  Alcotest.(check string) "format" "5'b01101" (Bitvec.to_string (bv 5 0b01101))

(* Property tests. *)

let bitvec_gen =
  QCheck.Gen.(
    int_range 1 16 >>= fun w ->
    int_range 0 ((1 lsl w) - 1) >|= fun v -> Bitvec.make ~width:w v)

let arb_bitvec = QCheck.make ~print:Bitvec.to_string bitvec_gen

let arb_bitvec_pair =
  let gen =
    QCheck.Gen.(
      int_range 1 16 >>= fun w ->
      let value = int_range 0 ((1 lsl w) - 1) in
      pair (value >|= Bitvec.make ~width:w) (value >|= Bitvec.make ~width:w))
  in
  QCheck.make
    ~print:(fun (a, b) -> Bitvec.to_string a ^ ", " ^ Bitvec.to_string b)
    gen

let prop_add_commutes =
  QCheck.Test.make ~name:"bitvec add commutes" ~count:500 arb_bitvec_pair
    (fun (a, b) -> Bitvec.equal (Bitvec.add a b) (Bitvec.add b a))

let prop_xor_self_zero =
  QCheck.Test.make ~name:"bitvec xor self is zero" ~count:500 arb_bitvec
    (fun a -> Bitvec.equal (Bitvec.logxor a a) (Bitvec.zero (Bitvec.width a)))

let prop_not_involution =
  QCheck.Test.make ~name:"bitvec not is involutive" ~count:500 arb_bitvec
    (fun a -> Bitvec.equal (Bitvec.lognot (Bitvec.lognot a)) a)

let prop_add_sub_roundtrip =
  QCheck.Test.make ~name:"bitvec (a+b)-b = a" ~count:500 arb_bitvec_pair
    (fun (a, b) -> Bitvec.equal (Bitvec.sub (Bitvec.add a b) b) a)

let prop_de_morgan =
  QCheck.Test.make ~name:"bitvec De Morgan" ~count:500 arb_bitvec_pair
    (fun (a, b) ->
      Bitvec.equal
        (Bitvec.lognot (Bitvec.logand a b))
        (Bitvec.logor (Bitvec.lognot a) (Bitvec.lognot b)))

(* ------------------------------------------------------------------ *)
(* Stats                                                              *)
(* ------------------------------------------------------------------ *)

let check_float = Alcotest.(check (float 1e-9))

let test_stats_mean () = check_float "mean" 2.5 (Stats.mean [ 1.; 2.; 3.; 4. ])

let test_stats_stddev () =
  check_float "stddev" (sqrt 1.25) (Stats.stddev [ 1.; 2.; 3.; 4. ])

let test_stats_median () =
  check_float "odd" 2. (Stats.median [ 3.; 1.; 2. ]);
  check_float "even" 2.5 (Stats.median [ 4.; 1.; 2.; 3. ]);
  check_float "single" 7. (Stats.median [ 7. ]);
  check_bool "empty nan" true (Float.is_nan (Stats.median []))

let test_stats_percent () =
  check_float "percent" 25. (Stats.percent ~num:1 ~den:4);
  check_float "zero den" 0. (Stats.percent ~num:1 ~den:0)

let test_stats_round2 () =
  check_float "round" 3.14 (Stats.round2 3.14159);
  check_float "round up" 2.68 (Stats.round2 2.675000001)

let test_largest_remainder_sums () =
  let r = Stats.largest_remainder ~total:10 [| 1.; 1.; 1. |] in
  check_int "sum" 10 (Array.fold_left ( + ) 0 r)

let test_largest_remainder_proportional () =
  let r = Stats.largest_remainder ~total:100 [| 3.; 1. |] in
  Alcotest.(check (array int)) "proportions" [| 75; 25 |] r

let test_largest_remainder_zero_weights () =
  let r = Stats.largest_remainder ~total:9 [| 0.; 0.; 0. |] in
  check_int "sum" 9 (Array.fold_left ( + ) 0 r);
  Array.iter (fun x -> check_bool "even-ish" true (x = 3)) r

let prop_largest_remainder_total =
  let gen =
    QCheck.Gen.(
      pair (int_range 0 500)
        (list_size (int_range 1 8) (float_range 0. 10.)))
  in
  let arb = QCheck.make gen in
  QCheck.Test.make ~name:"largest remainder sums to total" ~count:300 arb
    (fun (total, ws) ->
      let r = Stats.largest_remainder ~total (Array.of_list ws) in
      Array.fold_left ( + ) 0 r = total)

(* ------------------------------------------------------------------ *)
(* Table                                                              *)
(* ------------------------------------------------------------------ *)

let contains_substring haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  scan 0

let test_table_render () =
  let t = Table.create [ "Circuit"; "MS%" ] in
  Table.add_row t [ "b01"; "85.98" ];
  Table.add_row t [ "c432"; "88.18" ];
  let out = Table.render t in
  check_bool "has header" true (String.length out > 0 && String.sub out 0 1 = "|");
  check_bool "mentions b01" true (contains_substring out "b01");
  check_bool "right-aligned numbers" true (contains_substring out "85.98")

let test_table_arity_check () =
  let t = Table.create [ "a"; "b" ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: arity mismatch")
    (fun () -> Table.add_row t [ "only one" ])

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ( "util.prng",
      [
        Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
        Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
        Alcotest.test_case "int range" `Quick test_prng_int_range;
        Alcotest.test_case "int bound one" `Quick test_prng_int_bound_one;
        Alcotest.test_case "int rejects <=0" `Quick test_prng_int_rejects_nonpositive;
        Alcotest.test_case "copy" `Quick test_prng_copy_independent;
        Alcotest.test_case "split" `Quick test_prng_split;
        Alcotest.test_case "float range" `Quick test_prng_float_range;
        Alcotest.test_case "pick" `Quick test_prng_pick;
        Alcotest.test_case "shuffle permutation" `Quick test_prng_shuffle_permutation;
        Alcotest.test_case "sample w/o replacement" `Quick test_prng_sample_without_replacement;
        Alcotest.test_case "sample full" `Quick test_prng_sample_full;
      ] );
    ( "util.bitvec",
      [
        Alcotest.test_case "make truncates" `Quick test_bitvec_make_truncates;
        Alcotest.test_case "make rejects bad width" `Quick test_bitvec_make_rejects_bad_width;
        Alcotest.test_case "wide vectors" `Quick test_bitvec_wide;
        Alcotest.test_case "add wraps" `Quick test_bitvec_add_wraps;
        Alcotest.test_case "sub wraps" `Quick test_bitvec_sub_wraps;
        Alcotest.test_case "logic ops" `Quick test_bitvec_logic;
        Alcotest.test_case "width mismatch" `Quick test_bitvec_width_mismatch;
        Alcotest.test_case "unsigned compare" `Quick test_bitvec_compare_unsigned;
        Alcotest.test_case "bit access" `Quick test_bitvec_bits;
        Alcotest.test_case "slice/concat" `Quick test_bitvec_slice_concat;
        Alcotest.test_case "resize" `Quick test_bitvec_resize;
        Alcotest.test_case "to_string" `Quick test_bitvec_to_string;
        q prop_add_commutes;
        q prop_xor_self_zero;
        q prop_not_involution;
        q prop_add_sub_roundtrip;
        q prop_de_morgan;
      ] );
    ( "util.stats",
      [
        Alcotest.test_case "mean" `Quick test_stats_mean;
        Alcotest.test_case "stddev" `Quick test_stats_stddev;
        Alcotest.test_case "median" `Quick test_stats_median;
        Alcotest.test_case "percent" `Quick test_stats_percent;
        Alcotest.test_case "round2" `Quick test_stats_round2;
        Alcotest.test_case "largest remainder sums" `Quick test_largest_remainder_sums;
        Alcotest.test_case "largest remainder proportional" `Quick test_largest_remainder_proportional;
        Alcotest.test_case "largest remainder zero weights" `Quick test_largest_remainder_zero_weights;
        q prop_largest_remainder_total;
      ] );
    ( "util.table",
      [
        Alcotest.test_case "render" `Quick test_table_render;
        Alcotest.test_case "arity check" `Quick test_table_arity_check;
      ] );
  ]
