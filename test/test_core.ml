(* Tests for lib/core: pipeline preparation, stimulus/code conversion,
   equivalent-mutant classification, and the experiment drivers on small
   circuits with quick budgets. *)

module Bitvec = Mutsamp_util.Bitvec
module Parser = Mutsamp_hdl.Parser
module Check = Mutsamp_hdl.Check
module Sim = Mutsamp_hdl.Sim
module Netlist = Mutsamp_netlist.Netlist
module Registry = Mutsamp_circuits.Registry
module Operator = Mutsamp_mutation.Operator
module Mutant = Mutsamp_mutation.Mutant
module Kill = Mutsamp_mutation.Kill
module Fsim = Mutsamp_fault.Fsim
module Score = Mutsamp_validation.Score
module Nlfce = Mutsamp_sampling.Nlfce
module Topoff = Mutsamp_atpg.Topoff
module Config = Mutsamp_core.Config
module Pipeline = Mutsamp_core.Pipeline
module Experiments = Mutsamp_core.Experiments
module Report = Mutsamp_core.Report

(* Local stand-ins for the deprecated Fsim int-code conveniences. *)
let pattern_of_code nl code =
  Mutsamp_fault.Pattern.of_code
    ~inputs:(Array.length nl.Mutsamp_netlist.Netlist.input_nets)
    code

let patterns_of_codes nl codes = Array.map (pattern_of_code nl) codes


let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let bv w v = Bitvec.make ~width:w v
let parse src =
  Check.elaborate (Mutsamp_robust.Error.ok_exn (Parser.design_result src))

let tiny_config =
  {
    Config.quick with
    Config.vector =
      {
        Config.quick.Config.vector with
        Mutsamp_validation.Vectorgen.max_stall = 40;
        max_vectors = 256;
      };
    Config.min_random_length = 64;
    random_multiplier = 4;
  }

let b02_pipeline = lazy (
  match Registry.find "b02" with
  | Some e -> Pipeline.prepare (e.Registry.design ())
  | None -> Alcotest.fail "b02 missing")

let c17_pipeline = lazy (
  match Registry.find "c17" with
  | Some e -> Pipeline.prepare (e.Registry.design ())
  | None -> Alcotest.fail "c17 missing")

(* ------------------------------------------------------------------ *)
(* Pipeline                                                           *)
(* ------------------------------------------------------------------ *)

let test_prepare_populates_everything () =
  let p = Lazy.force b02_pipeline in
  check_bool "mutants" true (List.length p.Pipeline.mutants > 50);
  check_bool "faults" true (List.length p.Pipeline.faults > 20);
  check_bool "sequential" true p.Pipeline.sequential;
  let p2 = Lazy.force c17_pipeline in
  check_bool "combinational" false p2.Pipeline.sequential

let test_code_of_stimulus_roundtrip () =
  let p = Lazy.force c17_pipeline in
  (* c17 behavioural inputs g1, g2, g3, g6, g7 map to netlist inputs in
     declaration order, one bit each. *)
  let stim v =
    List.mapi (fun k name -> (name, bv 1 ((v lsr k) land 1))) [ "g1"; "g2"; "g3"; "g6"; "g7" ]
  in
  for v = 0 to 31 do
    check_int "code" v
      (Mutsamp_fault.Pattern.to_code (Pipeline.pattern_of_stimulus p (stim v)))
  done

let test_codes_of_sequences_concatenates () =
  let p = Lazy.force c17_pipeline in
  let stim v =
    List.mapi (fun k name -> (name, bv 1 ((v lsr k) land 1))) [ "g1"; "g2"; "g3"; "g6"; "g7" ]
  in
  let codes =
    Array.map Mutsamp_fault.Pattern.to_code
      (Pipeline.patterns_of_sequences p [ [ stim 1; stim 2 ]; [ stim 3 ] ])
  in
  Alcotest.(check (array int)) "flattened" [| 1; 2; 3 |] codes

let test_fault_simulate_runs () =
  let p = Lazy.force c17_pipeline in
  let r =
    Pipeline.fault_simulate p
      (patterns_of_codes p.Pipeline.netlist
         (Array.init 32 (fun i -> i)))
  in
  (* Exhaustive patterns on c17 detect every collapsed fault. *)
  Alcotest.(check (float 1e-6)) "full coverage" 100. (Fsim.coverage_percent r)

let test_scan_codes_layout () =
  let p = Lazy.force b02_pipeline in
  let seq = [ [ ("linea", bv 1 1) ]; [ ("linea", bv 1 0) ] ] in
  let codes =
    Array.map Mutsamp_fault.Pattern.to_code (Pipeline.scan_patterns_of_sequences p [ seq ])
  in
  check_int "one code per cycle" 2 (Array.length codes);
  (* Cycle 0 starts from reset: all scan bits zero, so the code is just
     the PI bit. *)
  check_int "first cycle pi only" 1 codes.(0)

let test_classify_equivalents_sound () =
  let p = Lazy.force c17_pipeline in
  let eq = Pipeline.classify_equivalents ~screen:64 ~seed:3 p in
  (* Claimed equivalents must survive every exhaustive input. *)
  let runner = Kill.make p.Pipeline.design p.Pipeline.mutants in
  let all = List.init 32 (fun v ->
      [ List.mapi (fun k name -> (name, bv 1 ((v lsr k) land 1)))
          [ "g1"; "g2"; "g3"; "g6"; "g7" ] ]) in
  let flags = Kill.killed_set runner all in
  List.iter (fun i -> check_bool "equivalent survives" false flags.(i)) eq;
  (* And non-equivalents are killed by the exhaustive set. *)
  List.iteri
    (fun i _ ->
      if not (List.mem i eq) then check_bool "non-equivalent killed" true flags.(i))
    p.Pipeline.mutants

(* ------------------------------------------------------------------ *)
(* Experiments                                                        *)
(* ------------------------------------------------------------------ *)

let test_operator_efficiency_rows () =
  let p = Lazy.force c17_pipeline in
  let row =
    Experiments.operator_efficiency ~config:tiny_config
      ~operators:Operator.all p ~name:"c17"
  in
  check_bool "has rows" true (List.length row.Experiments.per_operator >= 4);
  List.iter
    (fun (r : Experiments.operator_row) ->
      check_bool "count positive" true (r.Experiments.mutant_count > 0);
      check_bool "metric finite" true (Float.is_finite r.Experiments.metric.Nlfce.nlfce))
    row.Experiments.per_operator

let test_operator_efficiency_skips_absent () =
  (* c17 has no arithmetic, so AOR yields no row. *)
  let p = Lazy.force c17_pipeline in
  let row =
    Experiments.operator_efficiency ~config:tiny_config
      ~operators:[ Operator.AOR ] p ~name:"c17"
  in
  check_int "no AOR row" 0 (List.length row.Experiments.per_operator)

let test_weights_positive_and_bounded () =
  let p = Lazy.force c17_pipeline in
  let row =
    Experiments.operator_efficiency ~config:tiny_config ~operators:Operator.all p
      ~name:"c17"
  in
  let weights = Experiments.weights_of_table1 row in
  List.iter
    (fun (_, w) -> check_bool "in [1,8]" true (w >= 1. && w <= 8.))
    weights;
  check_bool "max is 8 when some op has positive nlfce" true
    (List.exists (fun (_, w) -> w > 7.99) weights
    || List.for_all (fun (_, w) -> w = 1.) weights)

let test_average_table1 () =
  let p = Lazy.force c17_pipeline in
  let mk seed =
    Experiments.operator_efficiency
      ~config:{ tiny_config with Config.seed } ~operators:Operator.all p ~name:"c17"
  in
  let rows = [ mk 1; mk 2; mk 3 ] in
  let avg = Experiments.average_table1 rows in
  check_int "same row count"
    (List.length (List.hd rows).Experiments.per_operator)
    (List.length avg.Experiments.per_operator);
  (* The averaged NLFCE lies within the min..max envelope. *)
  List.iter
    (fun (r : Experiments.operator_row) ->
      let values =
        List.map
          (fun row ->
            (List.find
               (fun (x : Experiments.operator_row) -> x.Experiments.op = r.Experiments.op)
               row.Experiments.per_operator).Experiments.metric.Nlfce.nlfce)
          rows
      in
      let lo = List.fold_left Float.min infinity values in
      let hi = List.fold_left Float.max neg_infinity values in
      check_bool "within envelope" true
        (r.Experiments.metric.Nlfce.nlfce >= lo -. 1e-9
        && r.Experiments.metric.Nlfce.nlfce <= hi +. 1e-9))
    avg.Experiments.per_operator

let test_sampling_comparison_structure () =
  let p = Lazy.force c17_pipeline in
  let row =
    Experiments.operator_efficiency ~config:tiny_config ~operators:Operator.all p
      ~name:"c17"
  in
  let weights = Experiments.weights_of_table1 row in
  let eq = Pipeline.classify_equivalents ~screen:64 ~seed:3 p in
  let t2 =
    Experiments.sampling_comparison ~config:tiny_config p ~name:"c17" ~weights
      ~equivalents:eq
  in
  check_int "same sampled count" t2.Experiments.random.Experiments.sampled_count
    t2.Experiments.oriented.Experiments.sampled_count;
  check_bool "ms within range" true
    (t2.Experiments.random.Experiments.ms.Score.score_percent >= 0.
    && t2.Experiments.random.Experiments.ms.Score.score_percent <= 100.)

let test_atpg_effort_ordering () =
  let p = Lazy.force c17_pipeline in
  let mutation_sequences =
    (* Modest validation data: exhaustive codes as 1-cycle sequences. *)
    List.init 8 (fun v ->
        [ List.mapi (fun k name -> (name, bv 1 ((v lsr k) land 1)))
            [ "g1"; "g2"; "g3"; "g6"; "g7" ] ])
  in
  let rows =
    Experiments.atpg_effort ~config:tiny_config p ~name:"c17" ~mutation_sequences
  in
  check_int "three rows" 3 (List.length rows);
  let by_kind kind =
    (List.find (fun (r : Experiments.atpg_row) -> r.Experiments.seed_kind = kind) rows)
      .Experiments.report
  in
  let none = by_kind "none" and mutation = by_kind "mutation" in
  (* Every policy ends at full coverage of testable faults on c17. *)
  Alcotest.(check (float 1e-6)) "none full" 100. none.Topoff.final_coverage_percent;
  Alcotest.(check (float 1e-6)) "mutation full" 100. mutation.Topoff.final_coverage_percent;
  (* The seed detects faults, so the seeded run needs no more random
     patterns than the unseeded one. *)
  check_bool "seed detected something" true (mutation.Topoff.seed_detected > 0)

let test_atpg_effort_sequential_scan () =
  let p = Lazy.force b02_pipeline in
  let seq = [ [ ("linea", bv 1 1) ]; [ ("linea", bv 1 0) ]; [ ("linea", bv 1 1) ] ] in
  let rows = Experiments.atpg_effort ~config:tiny_config p ~name:"b02" ~mutation_sequences:[ seq ] in
  List.iter
    (fun (r : Experiments.atpg_row) ->
      check_bool "coverage reported" true
        (r.Experiments.report.Topoff.final_coverage_percent > 0.))
    rows

let test_ms_vs_rate_monotone_tendency () =
  let p = Lazy.force c17_pipeline in
  let eq = Pipeline.classify_equivalents ~screen:64 ~seed:3 p in
  let weights = List.map (fun op -> (op, 1.)) Operator.all in
  let rows =
    Experiments.ms_vs_rate ~config:tiny_config p ~name:"c17" ~weights ~equivalents:eq
      ~rates:[ 0.05; 0.4; 1.0 ]
  in
  check_int "three rates" 3 (List.length rows);
  (* Sampling every mutant must reach (near) the full-population MS,
     which for c17 with exact equivalents is 100%. *)
  (match List.rev rows with
   | (_, ms_r, ms_o) :: _ ->
     Alcotest.(check (float 1e-6)) "random full rate" 100. ms_r;
     Alcotest.(check (float 1e-6)) "oriented full rate" 100. ms_o
   | [] -> Alcotest.fail "no rows")

(* ------------------------------------------------------------------ *)
(* Paper data                                                         *)
(* ------------------------------------------------------------------ *)

module Paper_data = Mutsamp_core.Paper_data

let test_paper_data_shapes () =
  check_int "13 table1 rows" 13 (List.length Paper_data.table1);
  check_int "4 table2 rows" 4 (List.length Paper_data.table2);
  check_int "c432 sample size" 77 Paper_data.c432_sampled_mutants

let test_published_weights () =
  let weights = Paper_data.published_weights "c432" in
  check_int "all ten operators" 10 (List.length weights);
  (* CVR has c432's best published NLFCE (955), so its weight is the
     8x cap; unmeasured operators sit at 1. *)
  Alcotest.(check (float 1e-9)) "CVR capped" 8. (List.assoc Operator.CVR weights);
  Alcotest.(check (float 1e-9)) "SDL unmeasured" 1. (List.assoc Operator.SDL weights);
  let lor_w = List.assoc Operator.LOR weights in
  let vr_w = List.assoc Operator.VR weights in
  check_bool "ordering follows published table" true (lor_w < vr_w && vr_w < 8.)

let test_published_weights_unknown_circuit () =
  let weights = Paper_data.published_weights "nonesuch" in
  List.iter (fun (_, w) -> Alcotest.(check (float 1e-9)) "all one" 1. w) weights

let test_table1_ordering_predicate () =
  check_bool "holds" true
    (Paper_data.table1_ordering_holds
       [ (Operator.LOR, 1.); (Operator.VR, 5.); (Operator.CVR, 9.) ]
       "x");
  check_bool "fails" false
    (Paper_data.table1_ordering_holds
       [ (Operator.LOR, 10.); (Operator.VR, 5.) ]
       "x");
  check_bool "no LOR trivially true" true
    (Paper_data.table1_ordering_holds [ (Operator.VR, 5.) ] "x")

(* ------------------------------------------------------------------ *)
(* End-to-end pinned run                                               *)
(* ------------------------------------------------------------------ *)

(* The complete flow on c17 with a fixed seed: sample -> generate ->
   score -> fault-simulate -> NLFCE. Guards the cross-module contract;
   structural assertions only (no golden floats), so legitimate
   heuristic tuning doesn't break it but wiring mistakes do. *)
let test_end_to_end_c17 () =
  let p = Lazy.force c17_pipeline in
  let eq = Pipeline.classify_equivalents ~screen:64 ~seed:5 p in
  let row =
    Experiments.operator_efficiency ~config:tiny_config ~operators:Operator.all p
      ~name:"c17"
  in
  let weights = Experiments.weights_of_table1 row in
  let t2 =
    Experiments.sampling_comparison ~config:tiny_config p ~name:"c17" ~weights
      ~equivalents:eq
  in
  List.iter
    (fun (s : Experiments.strategy_result) ->
      check_bool "sampled 10%" true
        (s.Experiments.sampled_count
        = Mutsamp_sampling.Strategy.sample_size ~rate:0.1 (List.length p.Pipeline.mutants));
      check_bool "ms in range" true
        (s.Experiments.ms.Score.score_percent > 50.
        && s.Experiments.ms.Score.score_percent <= 100.);
      check_bool "nlfce finite" true (Float.is_finite s.Experiments.metric.Nlfce.nlfce);
      check_bool "validation data exists" true (s.Experiments.validation_vectors > 0))
    [ t2.Experiments.random; t2.Experiments.oriented ];
  (* E from the classifier equals c17's known redundancy count at the
     behavioural level (stable: it is a property of the design). *)
  check_bool "equivalents classified" true (List.length eq >= 0)

(* ------------------------------------------------------------------ *)
(* Report                                                             *)
(* ------------------------------------------------------------------ *)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  scan 0

let test_report_tables_render () =
  let p = Lazy.force c17_pipeline in
  let row =
    Experiments.operator_efficiency ~config:tiny_config ~operators:Operator.all p
      ~name:"c17"
  in
  let s1 = Report.table1 [ row ] in
  check_bool "t1 mentions circuit" true (contains s1 "c17");
  check_bool "t1 mentions NLFCE" true (contains s1 "NLFCE");
  let eq = Pipeline.classify_equivalents ~screen:64 ~seed:3 p in
  let t2 =
    Experiments.sampling_comparison ~config:tiny_config p ~name:"c17"
      ~weights:(Experiments.weights_of_table1 row) ~equivalents:eq
  in
  let s2 = Report.table2 [ t2 ] in
  check_bool "t2 mentions strategies" true
    (contains s2 "oriented" && contains s2 "random")

let test_report_determinism () =
  let p = Lazy.force c17_pipeline in
  let run () =
    Report.table1
      [ Experiments.operator_efficiency ~config:tiny_config ~operators:Operator.all p
          ~name:"c17" ]
  in
  Alcotest.(check string) "same output" (run ()) (run ())

let suite =
  [
    ( "core.pipeline",
      [
        Alcotest.test_case "prepare" `Quick test_prepare_populates_everything;
        Alcotest.test_case "stimulus codes" `Quick test_code_of_stimulus_roundtrip;
        Alcotest.test_case "sequence codes" `Quick test_codes_of_sequences_concatenates;
        Alcotest.test_case "fault simulate" `Quick test_fault_simulate_runs;
        Alcotest.test_case "scan codes" `Quick test_scan_codes_layout;
        Alcotest.test_case "equivalents sound" `Quick test_classify_equivalents_sound;
      ] );
    ( "core.experiments",
      [
        Alcotest.test_case "operator efficiency" `Quick test_operator_efficiency_rows;
        Alcotest.test_case "absent operator skipped" `Quick test_operator_efficiency_skips_absent;
        Alcotest.test_case "weights bounded" `Quick test_weights_positive_and_bounded;
        Alcotest.test_case "average table1" `Quick test_average_table1;
        Alcotest.test_case "sampling comparison" `Quick test_sampling_comparison_structure;
        Alcotest.test_case "atpg effort" `Quick test_atpg_effort_ordering;
        Alcotest.test_case "atpg effort sequential" `Quick test_atpg_effort_sequential_scan;
        Alcotest.test_case "ms vs rate" `Quick test_ms_vs_rate_monotone_tendency;
      ] );
    ( "core.paper_data",
      [
        Alcotest.test_case "shapes" `Quick test_paper_data_shapes;
        Alcotest.test_case "published weights" `Quick test_published_weights;
        Alcotest.test_case "unknown circuit" `Quick test_published_weights_unknown_circuit;
        Alcotest.test_case "ordering predicate" `Quick test_table1_ordering_predicate;
      ] );
    ( "core.end_to_end",
      [ Alcotest.test_case "c17 pinned flow" `Quick test_end_to_end_c17 ] );
    ( "core.report",
      [
        Alcotest.test_case "tables render" `Quick test_report_tables_render;
        Alcotest.test_case "deterministic" `Quick test_report_determinism;
      ] );
  ]
