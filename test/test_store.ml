(* Tests for lib/store: the content-addressed campaign store. Covers
   the durable key/value layer (roundtrip, key canonicalisation, format
   guard, paranoid reads), the fetch-or-compute memoisation shape (hit
   short-circuit, degrade guard, chaos containment), maintenance
   (stats, gc, invalidate) — and the differential guarantee the store
   exists for: a warm re-run of a pipeline stage returns a result
   bit-identical to the cold run without redoing the work. *)

module Store = Mutsamp_store.Store
module Json = Mutsamp_obs.Json
module Metrics = Mutsamp_obs.Metrics
module Rerror = Mutsamp_robust.Error
module Chaos = Mutsamp_robust.Chaos
module Degrade = Mutsamp_robust.Degrade
module Ctx = Mutsamp_exec.Ctx
module Pattern = Mutsamp_fault.Pattern
module Registry = Mutsamp_circuits.Registry
module Operator = Mutsamp_mutation.Operator
module Config = Mutsamp_core.Config
module Pipeline = Mutsamp_core.Pipeline
module Experiments = Mutsamp_core.Experiments

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Chaos, degradation and the store counters are process-global. *)
let clean f () =
  Chaos.disarm_all ();
  Degrade.reset ();
  Store.reset_counters ();
  Fun.protect
    ~finally:(fun () ->
      Chaos.disarm_all ();
      Degrade.reset ();
      Store.reset_counters ())
    f

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

(* A fresh store rooted in a temp directory, removed afterwards. *)
let with_store f =
  let dir = Filename.temp_file "mutsamp_store" "" in
  Sys.remove dir;
  Fun.protect ~finally:(fun () -> rm_rf dir)
  @@ fun () ->
  match Store.open_dir dir with
  | Ok s -> f s
  | Error e -> Alcotest.failf "open_dir failed: %s" (Rerror.to_string e)

let count name =
  match List.assoc_opt name (Store.counters ()) with
  | Some n -> n
  | None -> Alcotest.failf "counter %s missing" name

(* ------------------------------------------------------------------ *)
(* Key/value layer                                                    *)
(* ------------------------------------------------------------------ *)

let test_roundtrip () =
  with_store @@ fun s ->
  let k = Store.key ~ns:"fsim" [ ("netlist", "abc"); ("seq", "def") ] in
  check_bool "fresh store misses" true (Store.find s k = None);
  check_int "miss counted" 1 (count "misses");
  let payload = Json.Obj [ ("detected", Json.Int 7) ] in
  Store.put s k payload;
  check_int "put counted" 1 (count "puts");
  (match Store.find s k with
   | Some v -> check_bool "payload intact" true (v = payload)
   | None -> Alcotest.fail "entry lost");
  check_int "hit counted" 1 (count "hits");
  (* Part order is canonicalised: the reversed key addresses the same
     entry. *)
  let k' = Store.key ~ns:"fsim" [ ("seq", "def"); ("netlist", "abc") ] in
  check_bool "order-insensitive key" true (Store.find s k' = Some payload);
  (* A second handle on the same directory sees the entry (durability,
     not process state). *)
  match Store.open_dir (Store.dir s) with
  | Ok s2 -> check_bool "persists across handles" true (Store.find s2 k = Some payload)
  | Error e -> Alcotest.failf "reopen failed: %s" (Rerror.to_string e)

let test_key_validation () =
  (match Store.key ~ns:"has space" [ ("a", "b") ] with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "unsafe namespace accepted");
  match Store.key ~ns:"ok" [ ("", "b") ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty field accepted"

let test_version_guard () =
  with_store @@ fun s ->
  let vfile = Filename.concat (Store.dir s) "VERSION" in
  let oc = open_out vfile in
  output_string oc "mutsamp-store 999\n";
  close_out oc;
  match Store.open_dir (Store.dir s) with
  | Error (Rerror.Io_error _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Rerror.to_string e)
  | Ok _ -> Alcotest.fail "foreign format opened"

(* Paranoid reads: unparsable bytes, or a valid document whose embedded
   key is not the requested one, read as a counted miss — never as a
   wrong payload and never as an exception. *)
let test_corrupt_entry_is_miss () =
  with_store @@ fun s ->
  let ka = Store.key ~ns:"ns" [ ("circuit", "c17") ] in
  let kb = Store.key ~ns:"ns" [ ("circuit", "c432") ] in
  Store.put s ka (Json.Int 1);
  Store.put s kb (Json.Int 2);
  let ns_dir = Filename.concat (Store.dir s) "ns" in
  let entries =
    Sys.readdir ns_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".json")
    |> List.sort compare
  in
  check_int "two entries on disk" 2 (List.length entries);
  (* Garbage bytes. *)
  let f0 = Filename.concat ns_dir (List.nth entries 0) in
  let oc = open_out f0 in
  output_string oc "{ not json";
  close_out oc;
  (* A well-formed document under the wrong filename: copy entry 1 over
     entry 0's slot is indistinguishable from a hash collision, so the
     embedded-key check must reject it. *)
  let f1 = Filename.concat ns_dir (List.nth entries 1) in
  let read path =
    let ic = open_in_bin path in
    Fun.protect ~finally:(fun () -> close_in ic)
    @@ fun () -> really_input_string ic (in_channel_length ic)
  in
  let doc1 = read f1 in
  Store.reset_counters ();
  check_bool "garbage reads as miss" true
    (Store.find s ka = None || Store.find s kb = None);
  let oc = open_out_bin f0 in
  output_string oc doc1;
  close_out oc;
  check_bool "key mismatch reads as miss" true
    (Store.find s ka = None || Store.find s kb = None);
  check_bool "corruption counted" true (count "corrupt" >= 2)

(* ------------------------------------------------------------------ *)
(* fetch_or_compute                                                   *)
(* ------------------------------------------------------------------ *)

let encode_int v = Json.Int v

let decode_int = function Json.Int v -> Some v | _ -> None

let test_fetch_or_compute () =
  with_store @@ fun s ->
  let calls = ref 0 in
  let compute () = incr calls; 42 in
  let fetch store =
    Store.fetch_or_compute store ~ns:"x" ~parts:[ ("k", "v") ]
      ~encode:encode_int ~decode:decode_int compute
  in
  (* No store: straight through, every time. *)
  check_int "no store computes" 42 (fetch None);
  check_int "no store computes again" 42 (fetch None);
  check_int "computed twice" 2 !calls;
  (* Store: first call computes and records, second replays. *)
  check_int "cold computes" 42 (fetch (Some s));
  check_int "computed on miss" 3 !calls;
  check_int "warm replays" 42 (fetch (Some s));
  check_int "not recomputed" 3 !calls;
  check_bool "hit counted" true (count "hits" >= 1)

let test_fetch_decode_mismatch () =
  with_store @@ fun s ->
  (* An entry a newer codec cannot decode is a miss: the computation
     reruns and overwrites the entry. *)
  let k = Store.key ~ns:"x" [ ("k", "v") ] in
  Store.put s k (Json.String "stale codec");
  let calls = ref 0 in
  let v =
    Store.fetch_or_compute (Some s) ~ns:"x" ~parts:[ ("k", "v") ]
      ~encode:encode_int ~decode:decode_int
      (fun () -> incr calls; 7)
  in
  check_int "recomputed" 7 v;
  check_int "compute ran" 1 !calls;
  check_bool "replaced entry decodes now" true (Store.find s k = Some (Json.Int 7))

let test_degrade_guard () =
  with_store @@ fun s ->
  let calls = ref 0 in
  let degraded_compute () =
    incr calls;
    Degrade.note ~stage:Rerror.Fsim (Rerror.Timeout Rerror.Fsim);
    13
  in
  let fetch f =
    Store.fetch_or_compute (Some s) ~ns:"x" ~parts:[ ("k", "v") ]
      ~encode:encode_int ~decode:decode_int f
  in
  (* A budget-cut / chaos-hit computation returns its partial result
     but must not poison the store. *)
  check_int "degraded result returned" 13 (fetch degraded_compute);
  check_int "degraded result not cached" 13 (fetch degraded_compute);
  check_int "computed both times" 2 !calls;
  (* Once the run is clean, the result is recorded as usual. *)
  Degrade.reset ();
  check_int "clean result" 21 (fetch (fun () -> incr calls; 21));
  check_int "clean result cached" 21 (fetch (fun () -> incr calls; 99));
  check_int "no recompute after clean store" 3 !calls

let test_put_contained () =
  with_store @@ fun s ->
  let k = Store.key ~ns:"x" [ ("k", "v") ] in
  (* An injected torn write: put swallows the failure, counts it, and
     the store stays consistent (no entry, no litter observable as an
     entry). *)
  Chaos.arm Chaos.Report_write (Chaos.Truncate 4);
  Store.put s k (Json.String "doomed");
  check_bool "torn put contained" true (count "put_errors" >= 1);
  check_bool "no torn entry observable" true (Store.find s k = None);
  Chaos.disarm_all ();
  (* An injected exception mid-write must not escape put either. *)
  Chaos.arm Chaos.Report_write Chaos.Exception;
  Store.put s k (Json.String "doomed too");
  check_bool "injected exception contained" true (count "put_errors" >= 2);
  Chaos.disarm_all ();
  check_bool "still no entry" true (Store.find s k = None);
  (* And the fault cleared, the same put goes through. *)
  Store.put s k (Json.String "ok");
  check_bool "recovered" true (Store.find s k = Some (Json.String "ok"))

(* ------------------------------------------------------------------ *)
(* Maintenance                                                        *)
(* ------------------------------------------------------------------ *)

let test_stats_gc_invalidate () =
  with_store @@ fun s ->
  let ka = Store.key ~ns:"fsim" [ ("circuit", "c17") ] in
  let kb = Store.key ~ns:"fsim" [ ("circuit", "c432") ] in
  let kc = Store.key ~ns:"t1row" [ ("circuit", "c17") ] in
  Store.put s ka (Json.Int 1);
  Store.put s kb (Json.Int 2);
  Store.put s kc (Json.Int 3);
  (* Plant a stale temp file, as an interrupted writer would. *)
  let stale = Filename.concat (Filename.concat (Store.dir s) "fsim") "x.json.tmp.1.2" in
  let oc = open_out stale in
  output_string oc "partial";
  close_out oc;
  let st = Store.stats s in
  check_int "entries" 3 st.Store.entries;
  check_int "stale tmp seen" 1 st.Store.stale_tmp;
  check_bool "bytes counted" true (st.Store.bytes > 0);
  check_bool "namespaces listed" true
    (st.Store.namespaces = [ ("fsim", 2); ("t1row", 1) ]);
  (* Unfiltered gc removes only the stale temp file. *)
  check_int "gc removes tmp" 1 (Store.gc s ());
  check_bool "tmp gone" false (Sys.file_exists stale);
  check_int "entries survive tmp gc" 3 (Store.stats s).Store.entries;
  (* Invalidation by key part: only the matching fsim entry goes. *)
  check_int "invalidate by field" 1
    (Store.invalidate s ~namespace:"fsim" ~field:("circuit", "c17") ());
  check_bool "target gone" true (Store.find s ka = None);
  check_bool "sibling intact" true (Store.find s kb = Some (Json.Int 2));
  (* Namespace gc drops the rest of fsim, leaving t1row alone. *)
  check_int "gc namespace" 1 (Store.gc s ~namespace:"fsim" ());
  check_bool "other namespace intact" true (Store.find s kc = Some (Json.Int 3));
  (* Blanket invalidation empties the store. *)
  check_int "invalidate all" 1 (Store.invalidate s ());
  check_int "empty" 0 (Store.stats s).Store.entries;
  check_bool "removals counted" true
    (count "gc_removed" >= 2 && count "invalidated" >= 2)

(* ------------------------------------------------------------------ *)
(* Differential: warm runs replay cold runs bit-identically           *)
(* ------------------------------------------------------------------ *)

let c17_pipeline = lazy (
  match Registry.find "c17" with
  | Some e -> Pipeline.prepare (e.Registry.design ())
  | None -> Alcotest.fail "c17 missing")

let tiny_config =
  {
    Config.quick with
    Config.vector =
      {
        Config.quick.Config.vector with
        Mutsamp_validation.Vectorgen.max_stall = 40;
        max_vectors = 256;
      };
    Config.min_random_length = 64;
    random_multiplier = 4;
  }

(* Run [f] with metrics collection on and return (result, counters). *)
let with_metrics f =
  Metrics.set_enabled true;
  Metrics.reset ();
  Fun.protect ~finally:(fun () -> Metrics.reset (); Metrics.set_enabled false)
  @@ fun () ->
  let r = f () in
  (r, (Metrics.snapshot ()).Metrics.counters)

let test_fsim_cold_warm () =
  with_store @@ fun s ->
  let p = Lazy.force c17_pipeline in
  let inputs = Array.length p.Pipeline.netlist.Mutsamp_netlist.Netlist.input_nets in
  let patterns = Array.init 32 (fun code -> Pattern.of_code ~inputs code) in
  let plain = Pipeline.fault_simulate p patterns in
  let ctx = Ctx.with_store s in
  let cold = Pipeline.fault_simulate ~ctx p patterns in
  check_bool "cold equals storeless" true (cold = plain);
  let warm, counters = with_metrics (fun () -> Pipeline.fault_simulate ~ctx p patterns) in
  check_bool "warm equals cold" true (warm = cold);
  check_bool "warm hit the store" true (count "hits" >= 1);
  (* The acceptance bar: a warm run evaluates zero pattern·fault pairs —
     no fsim.* counter moves at all. *)
  List.iter
    (fun (name, v) ->
      check_bool (Printf.sprintf "unexpected %s=%d on warm run" name v) false
        (String.length name >= 5 && String.sub name 0 5 = "fsim."))
    counters

let test_classify_cold_warm () =
  with_store @@ fun s ->
  let p = Lazy.force c17_pipeline in
  let plain = Pipeline.classify_equivalents ~screen:64 ~seed:5 p in
  let ctx = Ctx.with_store s in
  let cold = Pipeline.classify_equivalents ~screen:64 ~ctx ~seed:5 p in
  Alcotest.(check (list int)) "cold equals storeless" plain cold;
  Store.reset_counters ();
  let warm = Pipeline.classify_equivalents ~screen:64 ~ctx ~seed:5 p in
  Alcotest.(check (list int)) "warm equals cold" cold warm;
  check_int "warm was a pure replay" 1 (count "hits");
  check_int "no recompute stored" 0 (count "puts")

let test_t1row_cold_warm () =
  with_store @@ fun s ->
  let p = Lazy.force c17_pipeline in
  let config = { tiny_config with Config.seed = 11 } in
  let run ctx = Experiments.operator_efficiency ~config ?ctx p ~name:"c17" in
  let plain = run None in
  let ctx = Ctx.with_store s in
  let cold = run (Some ctx) in
  check_bool "cold equals storeless" true (cold = plain);
  let (warm, counters) = with_metrics (fun () -> run (Some ctx)) in
  check_bool "warm equals cold" true (warm = cold);
  check_bool "warm hit the store" true (count "hits" >= 1);
  (* Replayed Table-1 rows regenerate no vectors and simulate no
     faults. *)
  List.iter
    (fun (name, v) ->
      let prefixed p =
        String.length name >= String.length p
        && String.sub name 0 (String.length p) = p
      in
      check_bool (Printf.sprintf "unexpected %s=%d on warm run" name v) false
        (prefixed "fsim." || prefixed "vectorgen."))
    counters

(* ------------------------------------------------------------------ *)
(* Robustness: corrupt reads under chaos, concurrent maintenance      *)
(* ------------------------------------------------------------------ *)

module Pool = Mutsamp_exec.Pool

(* Satellite invariant: chaos-corrupted store reads during a warm
   --jobs 4 replay are counted (store.corrupt), degrade to a
   recompute, and stay bit-identical to the cold run — the store is an
   accelerator, never a correctness hazard. *)
let test_chaos_corrupt_warm_replay () =
  with_store @@ fun s ->
  let p = Lazy.force c17_pipeline in
  let inputs = Array.length p.Pipeline.netlist.Mutsamp_netlist.Netlist.input_nets in
  let patterns = Array.init 32 (fun code -> Pattern.of_code ~inputs code) in
  let pool = Pool.create ~domains:4 in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool)
  @@ fun () ->
  let ctx = Ctx.make ~pool ~store:s () in
  let cold = Pipeline.fault_simulate ~ctx p patterns in
  Store.reset_counters ();
  Chaos.arm Chaos.Store_read (Chaos.Truncate 5);
  let corrupted = Pipeline.fault_simulate ~ctx p patterns in
  Chaos.disarm_all ();
  check_bool "corrupted replay bit-identical to cold" true (corrupted = cold);
  check_bool "corrupt read counted" true (count "corrupt" >= 1);
  check_int "corrupt read is not a hit" 0 (count "hits");
  check_bool "recompute re-stored the entry" true (count "puts" >= 1);
  (* The recompute healed the entry: the next run is a pure replay. *)
  Store.reset_counters ();
  let healed = Pipeline.fault_simulate ~ctx p patterns in
  check_bool "healed replay bit-identical" true (healed = cold);
  check_bool "healed replay hits" true (count "hits" >= 1);
  check_int "healed replay stores nothing" 0 (count "puts")

(* An exception-action chaos arming on the read path must also stay
   contained: the read degrades to a miss instead of crashing. *)
let test_chaos_store_read_exception_contained () =
  with_store @@ fun s ->
  let k = Store.key ~ns:"fsim" [ ("t", "x") ] in
  Store.put s k (Json.Obj [ ("v", Json.Int 1) ]);
  Chaos.arm Chaos.Store_read Chaos.Exception;
  let r = Store.find s k in
  Chaos.disarm_all ();
  check_bool "injected read is a contained miss" true (r = None);
  check_bool "counted corrupt" true (count "corrupt" >= 1)

(* Two maintenance passes racing over the same directory: entries
   vanishing between readdir and stat/unlink are skipped and counted
   (store.raced), never raised — and each entry is removed by exactly
   one of the racers. *)
let test_concurrent_gc_invalidate () =
  with_store @@ fun s ->
  let n = 40 in
  for i = 1 to n do
    Store.put s
      (Store.key ~ns:"fsim" [ ("i", string_of_int i) ])
      (Json.Obj [ ("v", Json.Int i) ])
  done;
  Store.reset_counters ();
  let removed_gc = ref 0 and removed_inv = ref 0 in
  let t1 = Thread.create (fun () -> removed_gc := Store.gc s ~max_age_s:0. ()) () in
  let t2 = Thread.create (fun () -> removed_inv := Store.invalidate s ()) () in
  Thread.join t1;
  Thread.join t2;
  check_int "each entry removed exactly once" n (!removed_gc + !removed_inv);
  check_int "store emptied" 0 (Store.stats s).Store.entries;
  check_int "counters agree with returns" n
    (count "gc_removed" + count "invalidated")

let test_stats_to_json_fields () =
  with_store @@ fun s ->
  Store.put s (Store.key ~ns:"fsim" [ ("a", "1") ]) (Json.Obj []);
  Store.put s (Store.key ~ns:"score" [ ("b", "2") ]) (Json.Obj []);
  let st = Store.stats s in
  match Store.stats_to_json ~dir:(Store.dir s) st with
  | Json.Obj fields ->
    check_bool "dir" true
      (List.assoc_opt "dir" fields = Some (Json.String (Store.dir s)));
    check_bool "entries" true
      (List.assoc_opt "entries" fields = Some (Json.Int st.Store.entries));
    check_bool "bytes" true
      (List.assoc_opt "bytes" fields = Some (Json.Int st.Store.bytes));
    check_bool "stale_tmp" true
      (List.assoc_opt "stale_tmp" fields = Some (Json.Int st.Store.stale_tmp));
    (match List.assoc_opt "namespaces" fields with
     | Some (Json.Obj ns) ->
       Alcotest.(check (list (pair string int)))
         "namespaces mirror the text view" st.Store.namespaces
         (List.map
            (fun (k, v) ->
              match v with
              | Json.Int i -> (k, i)
              | _ -> Alcotest.fail "namespace count not an int")
            ns)
     | _ -> Alcotest.fail "namespaces object missing")
  | _ -> Alcotest.fail "stats_to_json must return an object"

(* ------------------------------------------------------------------ *)
(* Cone-keyed incremental fault-simulation entries                    *)
(* ------------------------------------------------------------------ *)

module B = Mutsamp_netlist.Netlist.Builder
module Netlist = Mutsamp_netlist.Netlist
module Collapse = Mutsamp_fault.Collapse
module Prpg = Mutsamp_atpg.Prpg
module Prng = Mutsamp_util.Prng

(* Two output cones sharing no logic: o1 = and(a,b) and o2 either
   or(c,d) or nor(c,d). Editing the second cone must leave the first
   cone's store entry replayable. *)
let two_cone_netlist flip =
  let b = B.create "twocone" in
  let a = B.input b "a" in
  let bb = B.input b "b" in
  let c = B.input b "c" in
  let d = B.input b "d" in
  B.output b "o1" (B.and_ b a bb);
  B.output b "o2" ((if flip then B.nor_ else B.or_) b c d);
  B.finalize b

let cone_patterns nl seed =
  Prpg.uniform_sequence (Prng.create seed)
    ~bits:(Array.length nl.Netlist.input_nets)
    ~length:12

let fsim_steps snap =
  match List.assoc_opt "fsim.machine_steps" snap.Metrics.counters with
  | Some n -> n
  | None -> 0

let test_cone_fsim_warm_replay () =
  with_store @@ fun s ->
  let nl = two_cone_netlist false in
  let faults = (Collapse.run nl).Collapse.representatives in
  let patterns = cone_patterns nl 42 in
  let ctx = Ctx.with_store s in
  let reference = Pipeline.fault_simulate_patterns nl ~faults ~patterns in
  let cold = Pipeline.fault_simulate_patterns ~ctx nl ~faults ~patterns in
  check_bool "cold run bit-identical to storeless" true (cold = reference);
  check_bool "cold run records both cones" true (count "puts" >= 2);
  Store.reset_counters ();
  Metrics.set_enabled true;
  Metrics.reset ();
  let warm = Pipeline.fault_simulate_patterns ~ctx nl ~faults ~patterns in
  let snap = Metrics.snapshot () in
  Metrics.set_enabled false;
  check_bool "warm run bit-identical" true (warm = cold);
  check_bool "warm run replays both cones" true (count "hits" >= 2);
  check_int "warm run stores nothing" 0 (count "puts");
  check_int "warm run simulates nothing" 0 (fsim_steps snap)

(* The incremental guarantee: after a one-gate edit, only the groups
   whose cone contains the edit recompute; the rest replay, and the
   stitched report matches a storeless run of the edited netlist. *)
let test_cone_fsim_partial_invalidation () =
  with_store @@ fun s ->
  let nl1 = two_cone_netlist false in
  let nl2 = two_cone_netlist true in
  let patterns = cone_patterns nl1 42 in
  let ctx = Ctx.with_store s in
  let f1 = (Collapse.run nl1).Collapse.representatives in
  let f2 = (Collapse.run nl2).Collapse.representatives in
  let _cold = Pipeline.fault_simulate_patterns ~ctx nl1 ~faults:f1 ~patterns in
  Store.reset_counters ();
  let edited = Pipeline.fault_simulate_patterns ~ctx nl2 ~faults:f2 ~patterns in
  check_bool "untouched cone replays" true (count "hits" >= 1);
  check_bool "edited cone recomputes" true (count "misses" >= 1);
  let reference = Pipeline.fault_simulate_patterns nl2 ~faults:f2 ~patterns in
  check_bool "stitched report bit-identical" true (edited = reference);
  (* Everything is recorded again: the next run is a pure replay. *)
  Store.reset_counters ();
  let warm = Pipeline.fault_simulate_patterns ~ctx nl2 ~faults:f2 ~patterns in
  check_bool "healed replay" true (warm = reference && count "misses" = 0)

let test_cone_invalidate () =
  with_store @@ fun s ->
  let nl = two_cone_netlist false in
  let faults = (Collapse.run nl).Collapse.representatives in
  let patterns = cone_patterns nl 42 in
  let ctx = Ctx.with_store s in
  let cold = Pipeline.fault_simulate_patterns ~ctx nl ~faults ~patterns in
  check_int "one entry per cone group" 2 (Store.stats s).Store.entries;
  check_int "unknown net matches nothing" 0 (Store.invalidate s ~cone:"zz" ());
  check_int "PI name drops exactly its cone" 1 (Store.invalidate s ~cone:"a" ());
  check_int "PO name drops the other" 1 (Store.invalidate s ~cone:"o2" ());
  check_int "store emptied" 0 (Store.stats s).Store.entries;
  (* The cone filter conjoins with the namespace filter. *)
  let _ = Pipeline.fault_simulate_patterns ~ctx nl ~faults ~patterns in
  check_int "wrong namespace matches nothing" 0
    (Store.invalidate s ~namespace:"fsim" ~cone:"a" ());
  check_int "right namespace" 1
    (Store.invalidate s ~namespace:"fsimcone" ~cone:"a" ());
  (* A re-run replays the survivor, recomputes the dropped cone, and
     stays bit-identical. *)
  Store.reset_counters ();
  let rerun = Pipeline.fault_simulate_patterns ~ctx nl ~faults ~patterns in
  check_bool "replays the survivor" true (count "hits" >= 1);
  check_bool "recomputes the dropped cone" true (count "misses" >= 1);
  check_bool "bit-identical after surgery" true (rerun = cold)

let suite =
  [
    ( "store.kv",
      [
        Alcotest.test_case "roundtrip" `Quick (clean test_roundtrip);
        Alcotest.test_case "key validation" `Quick (clean test_key_validation);
        Alcotest.test_case "format version guard" `Quick (clean test_version_guard);
        Alcotest.test_case "corrupt entry is a miss" `Quick
          (clean test_corrupt_entry_is_miss);
      ] );
    ( "store.fetch",
      [
        Alcotest.test_case "fetch_or_compute memoises" `Quick
          (clean test_fetch_or_compute);
        Alcotest.test_case "decode mismatch recomputes" `Quick
          (clean test_fetch_decode_mismatch);
        Alcotest.test_case "degraded runs are not cached" `Quick
          (clean test_degrade_guard);
        Alcotest.test_case "put contains injected faults" `Quick
          (clean test_put_contained);
      ] );
    ( "store.maintenance",
      [
        Alcotest.test_case "stats, gc and invalidate" `Quick
          (clean test_stats_gc_invalidate);
      ] );
    ( "store.robustness",
      [
        Alcotest.test_case "chaos-corrupt warm --jobs 4 replay" `Quick
          (clean test_chaos_corrupt_warm_replay);
        Alcotest.test_case "injected read exception contained" `Quick
          (clean test_chaos_store_read_exception_contained);
        Alcotest.test_case "concurrent gc and invalidate" `Quick
          (clean test_concurrent_gc_invalidate);
        Alcotest.test_case "stats_to_json mirrors text view" `Quick
          (clean test_stats_to_json_fields);
      ] );
    ( "store.cone",
      [
        Alcotest.test_case "warm replay per cone group" `Quick
          (clean test_cone_fsim_warm_replay);
        Alcotest.test_case "one-gate edit recomputes one cone" `Quick
          (clean test_cone_fsim_partial_invalidation);
        Alcotest.test_case "invalidate --cone surgery" `Quick
          (clean test_cone_invalidate);
      ] );
    ( "store.differential",
      [
        Alcotest.test_case "fault_simulate warm replay" `Quick
          (clean test_fsim_cold_warm);
        Alcotest.test_case "classify_equivalents warm replay" `Quick
          (clean test_classify_cold_warm);
        Alcotest.test_case "operator_efficiency warm replay" `Quick
          (clean test_t1row_cold_warm);
      ] );
  ]
