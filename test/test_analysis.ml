(* Static analysis: rule registry, constant propagation, HDL and
   netlist lint, mutant triage, untestability proofs and their ATPG
   prefilter, waivers and the run-report section. *)

module Ast = Mutsamp_hdl.Ast
module Parser = Mutsamp_hdl.Parser
module Check = Mutsamp_hdl.Check
module Sim = Mutsamp_hdl.Sim
module Stimuli = Mutsamp_hdl.Stimuli
module Prng = Mutsamp_util.Prng
module Operator = Mutsamp_mutation.Operator
module Mutant = Mutsamp_mutation.Mutant
module Generate = Mutsamp_mutation.Generate
module Kill = Mutsamp_mutation.Kill
module Equivalence = Mutsamp_mutation.Equivalence
module Netlist = Mutsamp_netlist.Netlist
module Gate = Mutsamp_netlist.Gate
module Topo = Mutsamp_netlist.Topo
module B = Netlist.Builder
module Flow = Mutsamp_synth.Flow
module Fault = Mutsamp_fault.Fault
module Satgen = Mutsamp_atpg.Satgen
module Prefilter = Mutsamp_atpg.Prefilter
module Redundancy = Mutsamp_atpg.Redundancy
module Topoff = Mutsamp_atpg.Topoff
module Registry = Mutsamp_circuits.Registry
module Strategy = Mutsamp_sampling.Strategy
module Metrics = Mutsamp_obs.Metrics
module Json = Mutsamp_obs.Json
module Runreport = Mutsamp_obs.Runreport
module Rule = Mutsamp_analysis.Rule
module Diag = Mutsamp_analysis.Diag
module Constprop = Mutsamp_analysis.Constprop
module Untestable = Mutsamp_analysis.Untestable
module Triage = Mutsamp_analysis.Triage
module Engine = Mutsamp_analysis.Engine
module Nl_lint = Mutsamp_analysis.Nl_lint
module Domtree = Mutsamp_analysis.Domtree
module Regions = Mutsamp_analysis.Regions
module Stats = Mutsamp_netlist.Stats
module Collapse = Mutsamp_fault.Collapse
module Scan = Mutsamp_atpg.Scan
module Ctx = Mutsamp_exec.Ctx

let parse src =
  Check.elaborate (Mutsamp_robust.Error.ok_exn (Parser.design_result src))
let design name = (Option.get (Registry.find name)).Registry.design ()

let counter_value snap name =
  match List.assoc_opt name snap.Metrics.counters with Some n -> n | None -> 0

(* ------------------------------------------------------------------ *)
(* Rule registry                                                      *)
(* ------------------------------------------------------------------ *)

let test_rule_catalogue () =
  let ids = List.map (fun (r : Rule.t) -> r.Rule.id) Rule.all in
  Alcotest.(check bool) "sorted" true (List.sort compare ids = ids);
  Alcotest.(check int)
    "unique ids"
    (List.length ids)
    (List.length (List.sort_uniq compare ids));
  List.iter
    (fun (r : Rule.t) ->
      Alcotest.(check bool) ("find " ^ r.Rule.id) true (Rule.find r.Rule.id = Some r))
    Rule.all

let test_rule_find () =
  Alcotest.(check bool) "case-insensitive" true
    (Rule.find "hdl001" = Some Rule.hdl_self_assign);
  Alcotest.(check bool) "unknown" true (Rule.find "ZZZ999" = None);
  Alcotest.(check string) "severity names" "error,warning,info"
    (String.concat ","
       (List.map Rule.severity_name [ Rule.Error; Rule.Warning; Rule.Info ]))

(* ------------------------------------------------------------------ *)
(* Constant propagation                                               *)
(* ------------------------------------------------------------------ *)

(* The builder's structural hashing never folds complementary pairs,
   so every gate below survives into the netlist; constprop must prove
   each one anyway. *)
let test_constprop_complementary_pairs () =
  let b = B.create "cp" in
  let x = B.input b "x" in
  let nx = B.not_ b x in
  let pairs =
    [
      ("and", B.and_ b x nx, Constprop.Zero);
      ("or", B.or_ b x nx, Constprop.One);
      ("nand", B.nand_ b x nx, Constprop.One);
      ("nor", B.nor_ b x nx, Constprop.Zero);
      ("xor", B.xor_ b x nx, Constprop.One);
      ("xnor", B.xnor_ b x nx, Constprop.Zero);
    ]
  in
  List.iteri (fun i (name, net, _) -> B.output b (name ^ string_of_int i) net) pairs;
  let nl = B.finalize b in
  let cp = Constprop.compute nl in
  List.iter
    (fun (name, net, expect) ->
      Alcotest.(check bool) name true (Constprop.value cp net = expect))
    pairs;
  Alcotest.(check bool) "x itself unknown" true
    (Constprop.value cp x = Constprop.Unknown);
  Alcotest.(check bool) "some constant nets" true (Constprop.num_constant cp >= 6)

(* A flip-flop is pinned only when its D input is proved equal to the
   reset value: D = and(x, not x) = 0 with init=false pins Q to 0; a
   self-feeding register stays Unknown. *)
let test_constprop_dff () =
  let b = B.create "cpdff" in
  let x = B.input b "x" in
  let q_pinned = B.dff b ~init:false in
  B.connect_dff b q_pinned ~d:(B.and_ b x (B.not_ b x));
  let q_free = B.dff b ~init:false in
  B.connect_dff b q_free ~d:(B.and_ b q_free x);
  B.output b "a" q_pinned;
  B.output b "b" q_free;
  let nl = B.finalize b in
  let cp = Constprop.compute nl in
  Alcotest.(check bool) "pinned dff is Zero" true
    (Constprop.value cp q_pinned = Constprop.Zero);
  Alcotest.(check bool) "self-feeding dff unknown" true
    (Constprop.value cp q_free = Constprop.Unknown)

(* ------------------------------------------------------------------ *)
(* HDL lint                                                           *)
(* ------------------------------------------------------------------ *)

let lintbad_src =
  {|design lintbad is
  input a : bit;
  input unused : bit;
  output y : bit;
  output z : bit;
  output w : bit;
  reg selfy : bit := 0;
  reg dead : bit := 0;
  reg ghost : bit := 0;
begin
  y := a;
  y := not a;
  selfy := selfy;
  dead := a;
  if '1' = '1' then
    z := a xor ghost;
  else
    z := not a;
  end if;
end design;|}

let test_hdl_lint_fixture () =
  let d = parse lintbad_src in
  let diags = Engine.lint_design Engine.default_options ~circuit:"lintbad" d in
  let ids = List.map (fun dg -> dg.Diag.rule.Rule.id) diags in
  Alcotest.(check (list string)) "rule ids, severity-sorted"
    [ "HDL006"; "HDL001"; "HDL002"; "HDL003"; "HDL004"; "HDL004"; "HDL005"; "HDL007" ]
    ids;
  Alcotest.(check int) "one error" 1 (Engine.error_count ~strict:false diags);
  Alcotest.(check int) "strict counts all" 8 (Engine.error_count ~strict:true diags);
  let by_loc loc = List.find (fun dg -> dg.Diag.loc = loc) diags in
  Alcotest.(check string) "unassigned output is the error" "HDL006"
    (by_loc "w").Diag.rule.Rule.id;
  Alcotest.(check string) "dead store anchored to signal" "HDL004"
    (by_loc "y").Diag.rule.Rule.id

let test_hdl_lint_clean_design () =
  let d = design "b01" in
  let diags = Engine.lint_design Engine.default_options ~circuit:"b01" d in
  Alcotest.(check int) "b01 lint-clean" 0 (List.length diags)

(* ------------------------------------------------------------------ *)
(* Netlist lint                                                       *)
(* ------------------------------------------------------------------ *)

let test_netlist_lint_fixture () =
  let b = B.create "nlbad" in
  let x = B.input b "x" in
  let y = B.input b "y" in
  let _unused = B.input b "unused" in
  let blocked = B.and_ b x (B.not_ b x) in
  let extra = B.and_ b blocked y in
  B.output b "o1" (B.or_ b x extra);
  let nl = B.finalize b in
  let diags = Engine.lint_netlist Engine.default_options ~circuit:"nlbad" nl in
  let count id =
    List.length (List.filter (fun dg -> dg.Diag.rule.Rule.id = id) diags)
  in
  Alcotest.(check int) "two constant nets (NL001)" 2 (count "NL001");
  Alcotest.(check int) "unused PI (NL003)" 1 (count "NL003");
  Alcotest.(check int) "blocked PI (NL004)" 1 (count "NL004");
  (* not(x) needs x = 1 to pass the AND it feeds but x = 0 at the
     reconverging OR: the post-dominator rule proves the stem dead. *)
  Alcotest.(check int) "dominator conflict (NL008)" 1 (count "NL008");
  Alcotest.(check int) "nothing else" (List.length diags)
    (count "NL001" + count "NL003" + count "NL004" + count "NL008")

let test_netlist_lint_no_observability () =
  let b = B.create "nlbad2" in
  let x = B.input b "x" in
  let y = B.input b "y" in
  let blocked = B.and_ b x (B.not_ b x) in
  B.output b "o" (B.and_ b blocked y);
  let nl = B.finalize b in
  let opts = { Engine.default_options with Engine.check_observability = false } in
  let diags = Engine.lint_netlist opts ~circuit:"nlbad2" nl in
  Alcotest.(check bool) "NL004 suppressed" true
    (List.for_all (fun dg -> dg.Diag.rule.Rule.id <> "NL004") diags)

let test_registry_lint_clean () =
  (* Satellite (b): the whole circuit registry is lint-clean with the
     default ruleset, designs and synthesized netlists both. *)
  List.iter
    (fun (e : Registry.entry) ->
      let d = e.Registry.design () in
      let dd = Engine.lint_design Engine.default_options ~circuit:e.Registry.name d in
      Alcotest.(check int) (e.Registry.name ^ " design clean") 0 (List.length dd);
      let nd =
        Engine.lint_netlist Engine.default_options ~circuit:e.Registry.name
          (Flow.synthesize d)
      in
      Alcotest.(check int) (e.Registry.name ^ " netlist clean") 0 (List.length nd))
    Registry.all

(* ------------------------------------------------------------------ *)
(* Mutant triage                                                      *)
(* ------------------------------------------------------------------ *)

let test_triage_counts_b01 () =
  let d = design "b01" in
  let mutants = Generate.all d in
  let t = Triage.run d mutants in
  Alcotest.(check int) "total verdicts" (List.length mutants)
    (List.length t.Triage.verdicts);
  Alcotest.(check int) "stillborn" 6 t.Triage.stillborn;
  Alcotest.(check int) "duplicates" 59 t.Triage.duplicates;
  Alcotest.(check int) "kept" (List.length mutants - 65)
    (List.length t.Triage.kept);
  let by_op =
    List.map (fun (op, n) -> (Operator.name op, n)) t.Triage.discards_by_op
  in
  List.iter
    (fun (op, n) ->
      Alcotest.(check int) ("discards " ^ op) n
        (Option.value ~default:0 (List.assoc_opt op by_op)))
    [ ("ROR", 14); ("UOI", 6); ("VR", 11); ("CVR", 21); ("VCR", 6); ("CR", 6); ("SDL", 1) ]

let test_triage_counts_b02 () =
  let d = design "b02" in
  let t = Triage.run d (Generate.all d) in
  Alcotest.(check int) "stillborn" 3 t.Triage.stillborn;
  Alcotest.(check int) "duplicates" 18 t.Triage.duplicates;
  let diags = Triage.diagnostics t ~circuit:"b02" in
  Alcotest.(check int) "one diagnostic per discard" 21 (List.length diags);
  List.iter
    (fun dg ->
      Alcotest.(check bool) "triage diags are info" true
        (dg.Diag.rule.Rule.severity = Rule.Info))
    diags

(* Soundness on a sequential design: the complete product-machine
   check must prove every stillborn equivalent to the original and
   every duplicate equivalent to its representative. *)
let test_triage_sound_sequential () =
  let d = design "b02" in
  let mutants = Generate.all d in
  let t = Triage.run d mutants in
  let by_id = Hashtbl.create 97 in
  List.iter (fun (m : Mutant.t) -> Hashtbl.replace by_id m.Mutant.id m) mutants;
  List.iter
    (fun ((m : Mutant.t), v) ->
      match v with
      | Triage.Kept -> ()
      | Triage.Stillborn ->
        Alcotest.(check bool)
          (Printf.sprintf "stillborn %d equivalent" m.Mutant.id)
          true
          (Equivalence.check d m.Mutant.design = Equivalence.Equivalent)
      | Triage.Duplicate rep ->
        let r = Hashtbl.find by_id rep in
        Alcotest.(check bool)
          (Printf.sprintf "duplicate %d = rep %d" m.Mutant.id rep)
          true
          (Equivalence.check r.Mutant.design m.Mutant.design
           = Equivalence.Equivalent))
    t.Triage.verdicts

(* Same property on a combinational design, by brute-force simulation
   over the whole input space, as a QCheck property over mutant ids. *)
let prop_triage_never_discards_killable =
  let d = parse Test_mutation.alu_src in
  let mutants = Generate.all d in
  let t = Triage.run d mutants in
  let by_id = Hashtbl.create 97 in
  List.iter (fun (m : Mutant.t) -> Hashtbl.replace by_id m.Mutant.id m) mutants;
  let verdicts = Array.of_list t.Triage.verdicts in
  let brute_equal d1 d2 =
    let s1 = Sim.create d1 and s2 = Sim.create d2 in
    List.for_all
      (fun stim -> Sim.outputs_equal (Sim.step s1 stim) (Sim.step s2 stim))
      (Stimuli.enumerate d)
  in
  let arb =
    QCheck.make
      ~print:(fun i -> Mutant.to_string (fst verdicts.(i)))
      QCheck.Gen.(int_range 0 (Array.length verdicts - 1))
  in
  QCheck.Test.make ~name:"triage discards are behaviourally equivalent" ~count:60
    arb
    (fun i ->
      match verdicts.(i) with
      | _, Triage.Kept -> true
      | m, Triage.Stillborn -> brute_equal d m.Mutant.design
      | m, Triage.Duplicate rep ->
        brute_equal (Hashtbl.find by_id rep).Mutant.design m.Mutant.design)

(* Extrapolated (total, killed, equivalent) from the kept set must be
   bit-identical to the counts of an untriaged campaign under the same
   test set and equivalence checker. *)
let test_triage_extrapolate_bit_identical () =
  let d = design "b02" in
  let mutants = Generate.all d in
  let seqs =
    List.init 24 (fun i -> Stimuli.random_sequence (Prng.create (1000 + i)) d 12)
  in
  let equivalent_survivor (m : Mutant.t) =
    Equivalence.check d m.Mutant.design = Equivalence.Equivalent
  in
  (* Untriaged reference campaign over the full population. *)
  let flags = Kill.killed_set (Kill.make d mutants) seqs in
  let full_killed = Array.fold_left (fun a k -> if k then a + 1 else a) 0 flags in
  let full_equiv =
    List.fold_left
      (fun a (m : Mutant.t) ->
        if (not flags.(m.Mutant.id)) && equivalent_survivor m then a + 1 else a)
      0 mutants
  in
  (* Triaged campaign: simulate the kept set only, extrapolate. *)
  let t = Triage.run d mutants in
  let kept = t.Triage.kept in
  let kept_pos = Hashtbl.create 97 in
  List.iteri (fun i (m : Mutant.t) -> Hashtbl.replace kept_pos m.Mutant.id i) kept;
  let kflags = Kill.killed_set (Kill.make d kept) seqs in
  let killed (m : Mutant.t) = kflags.(Hashtbl.find kept_pos m.Mutant.id) in
  let outcome =
    Triage.extrapolate t ~killed ~equivalent:(fun m ->
        (not (killed m)) && equivalent_survivor m)
  in
  Alcotest.(check int) "total" (List.length mutants) outcome.Triage.total;
  Alcotest.(check int) "killed" full_killed outcome.Triage.killed;
  Alcotest.(check int) "equivalent" full_equiv outcome.Triage.equivalent;
  Alcotest.(check bool) "triage actually discarded some" true
    (List.length kept < List.length mutants)

(* ------------------------------------------------------------------ *)
(* Untestability proofs and the ATPG prefilter                        *)
(* ------------------------------------------------------------------ *)

(* Copy a combinational netlist through the builder and graft a
   statically-provable redundant cone onto the first output:
   blocked = and(x, not x) is a complementary pair the builder never
   folds, so constprop proves it 0 and SA0 on the cone is untestable. *)
let augment (nl : Netlist.t) =
  let b = B.create (nl.Netlist.name ^ "_red") in
  let n = Array.length nl.Netlist.gates in
  let copy = Array.make n (-1) in
  Array.iteri
    (fun i (g : Gate.t) ->
      match g.Gate.kind with
      | Gate.Pi name -> copy.(i) <- B.input b name
      | Gate.Const v -> copy.(i) <- B.const b v
      | _ -> ())
    nl.Netlist.gates;
  let topo = Topo.compute nl in
  Array.iter
    (fun i ->
      let g = nl.Netlist.gates.(i) in
      let a () = copy.(g.Gate.fanins.(0)) in
      let c () = copy.(g.Gate.fanins.(1)) in
      copy.(i) <-
        (match g.Gate.kind with
         | Gate.Buf -> B.buf b (a ())
         | Gate.Not -> B.not_ b (a ())
         | Gate.And -> B.and_ b (a ()) (c ())
         | Gate.Or -> B.or_ b (a ()) (c ())
         | Gate.Nand -> B.nand_ b (a ()) (c ())
         | Gate.Nor -> B.nor_ b (a ()) (c ())
         | Gate.Xor -> B.xor_ b (a ()) (c ())
         | Gate.Xnor -> B.xnor_ b (a ()) (c ())
         | Gate.Pi _ | Gate.Const _ | Gate.Dff _ -> assert false))
    topo.Topo.order;
  let x = copy.(nl.Netlist.input_nets.(0)) in
  let y = copy.(nl.Netlist.input_nets.(1)) in
  let blocked = B.and_ b x (B.not_ b x) in
  let extra = B.and_ b blocked y in
  Array.iteri
    (fun k (name, net) ->
      if k = 0 then B.output b name (B.or_ b copy.(net) extra)
      else B.output b name copy.(net))
    nl.Netlist.output_list;
  B.finalize b

let augmented name = augment (Flow.synthesize (design name))

(* Every statically-proved fault must be confirmed untestable by the
   exact SAT engine — the prefilter is sound, never just heuristic. *)
let untestable_proofs_confirmed name =
  let nl = augmented name in
  let pf = Prefilter.make nl in
  let faults = Fault.full_list nl in
  let proved = List.filter (Prefilter.is_untestable pf) faults in
  Alcotest.(check bool) (name ^ ": proves some faults") true (proved <> []);
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (name ^ ": SAT confirms " ^ Fault.to_string f)
        true
        (Mutsamp_robust.Error.ok_exn (Satgen.generate nl f) = Satgen.Untestable))
    proved

let test_untestable_sound_c17 () = untestable_proofs_confirmed "c17"
let test_untestable_sound_c432 () = untestable_proofs_confirmed "c432"

let test_untestable_none_on_clean_c17 () =
  let nl = Flow.synthesize (design "c17") in
  let ut = Untestable.analyze nl in
  Alcotest.(check int) "pristine c17 has no static redundancy" 0
    (Untestable.count_untestable ut (Fault.full_list nl))

(* Redundancy removal with and without the static prefilter: identical
   final netlist and tie count, strictly fewer SAT solves, and the
   analysis.static_untestable counter records the saved solves. *)
let redundancy_differential name =
  let nl = augmented name in
  let run static_filter =
    Metrics.set_enabled true;
    Metrics.reset ();
    let cleaned, tied =
      Redundancy.remove ~ctx:{ Mutsamp_exec.Ctx.default with static_filter } nl
    in
    let snap = Metrics.snapshot () in
    Metrics.set_enabled false;
    ( cleaned,
      tied,
      counter_value snap "sat.solves",
      counter_value snap "analysis.static_untestable" )
  in
  let c1, t1, s1, u1 = run true in
  let c2, t2, s2, u2 = run false in
  Alcotest.(check bool) (name ^ ": identical netlist") true (c1 = c2);
  Alcotest.(check int) (name ^ ": identical tie count") t2 t1;
  Alcotest.(check bool)
    (Printf.sprintf "%s: fewer SAT solves (%d < %d)" name s1 s2)
    true (s1 < s2);
  Alcotest.(check bool) (name ^ ": static proofs counted") true (u1 > 0);
  Alcotest.(check int) (name ^ ": no static counts without filter") 0 u2

let test_redundancy_differential_c17 () = redundancy_differential "c17"
let test_redundancy_differential_c432 () = redundancy_differential "c432"

(* Topoff with and without the prefilter: same fault classification
   and coverage, strictly fewer deterministic ATPG calls. *)
let test_topoff_differential_c17 () =
  let nl = augmented "c17" in
  let faults = Fault.full_list nl in
  let run static_filter =
    Topoff.run ~generator:Topoff.Use_sat ~seed:1
      ~ctx:{ Mutsamp_exec.Ctx.default with static_filter } nl ~faults
      ~seed_patterns:[||]
  in
  let r1 = run true and r2 = run false in
  Alcotest.(check int) "same untestable" r2.Topoff.untestable r1.Topoff.untestable;
  Alcotest.(check int) "same aborted" r2.Topoff.aborted r1.Topoff.aborted;
  Alcotest.(check (float 1e-9)) "same coverage" r2.Topoff.final_coverage_percent
    r1.Topoff.final_coverage_percent;
  Alcotest.(check bool)
    (Printf.sprintf "fewer atpg calls (%d < %d)" r1.Topoff.atpg_calls
       r2.Topoff.atpg_calls)
    true
    (r1.Topoff.atpg_calls < r2.Topoff.atpg_calls)

(* ------------------------------------------------------------------ *)
(* Structural dataflow engine: dominator trees                        *)
(* ------------------------------------------------------------------ *)

(* Brute-force reference: [d] dominates [v] iff deleting [d] leaves [v]
   unreachable from the virtual root (which has an edge to every entry
   in [roots]); [None] when [v] is unreachable to begin with. *)
let brute_dominators ~n ~succs ~roots v =
  let reachable_avoiding d =
    let seen = Array.make n false in
    let rec go u =
      if u <> d && not seen.(u) then begin
        seen.(u) <- true;
        List.iter go succs.(u)
      end
    in
    List.iter go roots;
    seen.(v)
  in
  if not (reachable_avoiding (-1)) then None
  else
    Some
      (List.filter
         (fun d -> d <> v && not (reachable_avoiding d))
         (List.init n Fun.id))

let domtree_matches_brute ~n ~succs ~roots =
  let t = Domtree.compute ~n ~succs ~roots in
  List.for_all
    (fun v ->
      match brute_dominators ~n ~succs ~roots v with
      | None -> t.Domtree.idom.(v) < 0
      | Some doms ->
        t.Domtree.idom.(v) >= 0
        && List.sort compare (Domtree.dominators t v) = doms)
    (List.init n Fun.id)

let test_domtree_handcrafted () =
  (* Diamond: the fork dominates the join, neither branch does. *)
  let succs = [| [ 1; 2 ]; [ 3 ]; [ 3 ]; [] |] in
  Alcotest.(check bool) "diamond matches brute force" true
    (domtree_matches_brute ~n:4 ~succs ~roots:[ 0 ]);
  let t = Domtree.compute ~n:4 ~succs ~roots:[ 0 ] in
  Alcotest.(check (list int)) "join's only strict dominator is the fork" [ 0 ]
    (Domtree.dominators t 3);
  Alcotest.(check bool) "dominates is reflexive" true (Domtree.dominates t 3 3);
  Alcotest.(check bool) "fork dominates join" true (Domtree.dominates t 0 3);
  Alcotest.(check bool) "a branch does not" false (Domtree.dominates t 1 3);
  (* A second entry point breaks the fork's dominance. *)
  Alcotest.(check bool) "multi-root matches brute force" true
    (domtree_matches_brute ~n:4 ~succs ~roots:[ 0; 2 ]);
  let t2 = Domtree.compute ~n:4 ~succs ~roots:[ 0; 2 ] in
  Alcotest.(check (list int)) "join undominated under two roots" []
    (Domtree.dominators t2 3);
  (* Unreachable node: idom = -1, empty chain. *)
  let succs3 = [| [ 1 ]; []; [ 1 ] |] in
  let t3 = Domtree.compute ~n:3 ~succs:succs3 ~roots:[ 0 ] in
  Alcotest.(check int) "unreachable idom" (-1) t3.Domtree.idom.(2);
  Alcotest.(check (list int)) "unreachable chain" [] (Domtree.dominators t3 2);
  Alcotest.(check bool) "unreachable matches brute force" true
    (domtree_matches_brute ~n:3 ~succs:succs3 ~roots:[ 0 ])

let prop_domtree_random_dags =
  let arb =
    QCheck.make
      ~print:(fun (n, bits) ->
        Printf.sprintf "n=%d edges=%s" n
          (String.concat "" (List.map (fun b -> if b then "1" else "0") bits)))
      QCheck.Gen.(
        int_range 2 12 >>= fun n ->
        list_repeat (n * n) bool >|= fun bits -> (n, bits))
  in
  QCheck.Test.make ~name:"domtree matches brute force on random DAGs"
    ~count:100 arb
    (fun (n, bits) ->
      let succs = Array.make n [] in
      List.iteri
        (fun k b ->
          let i = k / n and j = k mod n in
          if b && i < j then succs.(i) <- j :: succs.(i))
        bits;
      (* Sources act as the roots, so every node is reachable; the
         handcrafted cases cover unreachable nodes. *)
      let has_pred = Array.make n false in
      Array.iter (List.iter (fun j -> has_pred.(j) <- true)) succs;
      let roots = List.filter (fun v -> not has_pred.(v)) (List.init n Fun.id) in
      domtree_matches_brute ~n ~succs ~roots)

let test_postdom_netlist () =
  let nl = Flow.synthesize (design "c17") in
  let t = Domtree.post nl in
  let n = Array.length nl.Netlist.gates in
  Alcotest.(check int) "one node per net" n t.Domtree.n;
  Array.iteri
    (fun i _ ->
      Alcotest.(check bool) (Printf.sprintf "net %d observable" i) true
        (t.Domtree.idom.(i) >= 0);
      Alcotest.(check bool) "reflexive" true (Domtree.dominates t i i);
      List.iter
        (fun d ->
          Alcotest.(check bool) "chain holds real nets" true (d >= 0 && d < n))
        (Domtree.dominators t i))
    nl.Netlist.gates

(* ------------------------------------------------------------------ *)
(* Fanout-free regions, cone hashes, cone groups                      *)
(* ------------------------------------------------------------------ *)

(* A six-gate AND chain re-using one side input: the whole chain (and
   the single-fanout PI feeding it) collapses into the PO driver's
   region, while y is a reconvergent stem whose own region holds no
   logic. Hand-derived numbers, checked against both the engine and
   the [Netlist.Stats] mirror. *)
let chain_fixture () =
  let b = B.create "chain" in
  let x = B.input b "x" in
  let y = B.input b "y" in
  let c = ref (B.and_ b x y) in
  for _ = 2 to 6 do
    c := B.and_ b !c y
  done;
  B.output b "o" !c;
  (B.finalize b, !c)

let test_regions_chain_fixture () =
  let nl, last = chain_fixture () in
  let r = Regions.compute nl in
  let s = Stats.compute nl in
  Alcotest.(check int) "two regions" 2 r.Regions.region_count;
  Alcotest.(check int) "chain collapses into the PO driver" 6
    r.Regions.max_region_size;
  Alcotest.(check int) "y reconverges" 1 r.Regions.reconvergence_count;
  Alcotest.(check int) "x chases to the chain head" last
    r.Regions.head.(nl.Netlist.input_nets.(0));
  Alcotest.(check int) "y is its own head" nl.Netlist.input_nets.(1)
    r.Regions.head.(nl.Netlist.input_nets.(1));
  Alcotest.(check int) "stats regions" r.Regions.region_count s.Stats.regions;
  Alcotest.(check int) "stats max region" r.Regions.max_region_size
    s.Stats.max_region;
  Alcotest.(check int) "stats reconvergences" r.Regions.reconvergence_count
    s.Stats.reconvergences

let test_regions_stats_registry () =
  (* Stats duplicates the region semantics compactly (the analysis
     library sits above lib/netlist); the two must agree everywhere. *)
  List.iter
    (fun (e : Registry.entry) ->
      let nl = Flow.synthesize (e.Registry.design ()) in
      let r = Regions.compute nl and s = Stats.compute nl in
      let name = e.Registry.name in
      Alcotest.(check int) (name ^ ": regions") r.Regions.region_count
        s.Stats.regions;
      Alcotest.(check int) (name ^ ": max region") r.Regions.max_region_size
        s.Stats.max_region;
      Alcotest.(check int)
        (name ^ ": reconvergences")
        r.Regions.reconvergence_count s.Stats.reconvergences;
      Alcotest.(check bool) (name ^ ": nonempty") true
        (s.Stats.regions > 0 && s.Stats.max_region > 0))
    Registry.all

(* Cone hashes are local: two netlists built identically except for one
   late gate agree on every net outside that gate's cone and disagree
   exactly on it. *)
let test_cone_hash_locality () =
  let build flip =
    let b = B.create "pair" in
    let a = B.input b "a" in
    let c = B.input b "c" in
    let d = B.input b "d" in
    let g1 = B.and_ b a c in
    let g2 = (if flip then B.nor_ else B.or_) b c d in
    B.output b "o1" g1;
    B.output b "o2" g2;
    (B.finalize b, g2)
  in
  let nl1, g2a = build false in
  let nl2, g2b = build true in
  Alcotest.(check int) "same construction order" g2a g2b;
  let r1 = Regions.compute nl1 and r2 = Regions.compute nl2 in
  Array.iteri
    (fun v _ ->
      if v = g2a then
        Alcotest.(check bool) "edited gate re-hashes" false
          (r1.Regions.cone_hash.(v) = r2.Regions.cone_hash.(v))
      else
        Alcotest.(check string)
          (Printf.sprintf "net %d untouched" v)
          r1.Regions.cone_hash.(v) r2.Regions.cone_hash.(v))
    nl1.Netlist.gates

let fault_net (f : Fault.t) =
  match f.Fault.site with Fault.Stem n -> n | Fault.Branch { gate; _ } -> gate

let test_cone_groups_partition_c432 () =
  let nl = Flow.synthesize (design "c432") in
  let r = Regions.compute nl in
  let faults = (Collapse.run nl).Collapse.representatives in
  let groups = Regions.cone_groups nl r faults in
  Alcotest.(check bool) "several groups" true (List.length groups > 1);
  let idx =
    List.concat_map
      (fun g -> List.map (fun (i, _, _) -> i) g.Regions.faults)
      groups
  in
  Alcotest.(check int) "every fault grouped" (List.length faults)
    (List.length idx);
  Alcotest.(check int) "each exactly once" (List.length idx)
    (List.length (List.sort_uniq compare idx));
  let groups' = Regions.cone_groups nl r faults in
  Alcotest.(check (list string)) "deterministic"
    (List.map (fun g -> g.Regions.ghash) groups)
    (List.map (fun g -> g.Regions.ghash) groups');
  List.iter
    (fun g ->
      Alcotest.(check bool) "collapsed representatives are cacheable" true
        g.Regions.cacheable;
      List.iter
        (fun (_, f, _) ->
          Alcotest.(check bool) "member's net inside the group cone" true
            (List.mem (fault_net f) g.Regions.nets))
        g.Regions.faults)
    groups;
  (* The human-facing tokens of any group resolve PI and PO names. *)
  let g0 = List.hd groups in
  let tokens = Regions.net_tokens nl g0.Regions.nets in
  Alcotest.(check bool) "tokens nonempty" true (tokens <> []);
  Alcotest.(check bool) "tokens sorted and deduplicated" true
    (List.sort_uniq compare tokens = tokens)

(* ------------------------------------------------------------------ *)
(* Fault-dominance collapsing                                         *)
(* ------------------------------------------------------------------ *)

let test_dominance_split_permutation () =
  let nl = Flow.synthesize (design "c432") in
  let coll = Collapse.run nl in
  Metrics.set_enabled true;
  Metrics.reset ();
  let dom = Collapse.dominance nl coll in
  let snap = Metrics.snapshot () in
  Metrics.set_enabled false;
  let sort = List.sort Fault.compare in
  Alcotest.(check bool) "search @ deferred permutes the representatives" true
    (sort (dom.Collapse.search @ dom.Collapse.deferred)
    = sort coll.Collapse.representatives);
  Alcotest.(check bool) "some classes deferred" true
    (dom.Collapse.deferred <> []);
  Alcotest.(check int) "deferrals counted"
    (List.length dom.Collapse.deferred)
    (counter_value snap "analysis.dominance_collapsed")

(* Redundancy removal with and without dominance collapsing: identical
   cleaned netlist and tie count, no more (and on these fixtures,
   strictly fewer) SAT solves. *)
let redundancy_dominance_differential name =
  let nl = augmented name in
  let run dominance =
    Metrics.set_enabled true;
    Metrics.reset ();
    let cleaned, tied =
      Redundancy.remove ~ctx:{ Ctx.default with Ctx.dominance } nl
    in
    let snap = Metrics.snapshot () in
    Metrics.set_enabled false;
    (cleaned, tied, counter_value snap "sat.solves")
  in
  let c1, t1, s1 = run true in
  let c2, t2, s2 = run false in
  Alcotest.(check bool) (name ^ ": identical netlist") true (c1 = c2);
  Alcotest.(check int) (name ^ ": identical tie count") t2 t1;
  Alcotest.(check bool)
    (Printf.sprintf "%s: fewer SAT solves (%d < %d)" name s1 s2)
    true (s1 < s2)

let test_redundancy_dominance_c17 () = redundancy_dominance_differential "c17"
let test_redundancy_dominance_c432 () = redundancy_dominance_differential "c432"

(* Topoff with and without dominance collapsing: bit-identical fault
   classification and coverage, never more deterministic calls, and the
   deferral counter records the reordered classes. [random_budget:0]
   forces every fault into the deterministic phase so the dominance
   path is exercised even on circuits random patterns would finish. *)
let topoff_dominance_differential ?random_budget ?(expect_deferrals = false)
    name =
  let nl0 = Flow.synthesize (design name) in
  let nl = if Netlist.num_dffs nl0 > 0 then Scan.full_scan nl0 else nl0 in
  let faults = Fault.full_list nl in
  let run dominance =
    Metrics.set_enabled true;
    Metrics.reset ();
    let r =
      Topoff.run ~generator:Topoff.Use_sat ?random_budget ~seed:7
        ~ctx:{ Ctx.default with Ctx.dominance } nl ~faults ~seed_patterns:[||]
    in
    let snap = Metrics.snapshot () in
    Metrics.set_enabled false;
    (r, counter_value snap "analysis.dominance_collapsed")
  in
  let r1, d1 = run true in
  let r2, d2 = run false in
  Alcotest.(check int) (name ^ ": same total") r2.Topoff.total_faults
    r1.Topoff.total_faults;
  Alcotest.(check int) (name ^ ": same untestable") r2.Topoff.untestable
    r1.Topoff.untestable;
  Alcotest.(check int) (name ^ ": same aborted") r2.Topoff.aborted
    r1.Topoff.aborted;
  Alcotest.(check (float 1e-9))
    (name ^ ": same coverage")
    r2.Topoff.final_coverage_percent r1.Topoff.final_coverage_percent;
  Alcotest.(check bool)
    (Printf.sprintf "%s: no extra atpg calls (%d <= %d)" name
       r1.Topoff.atpg_calls r2.Topoff.atpg_calls)
    true
    (r1.Topoff.atpg_calls <= r2.Topoff.atpg_calls);
  Alcotest.(check int) (name ^ ": nothing counted when disabled") 0 d2;
  if expect_deferrals then
    Alcotest.(check bool) (name ^ ": deferrals counted") true (d1 > 0)

let test_topoff_dominance_c17 () =
  topoff_dominance_differential ~random_budget:0 ~expect_deferrals:true "c17"

let test_topoff_dominance_c432 () =
  topoff_dominance_differential ~random_budget:0 ~expect_deferrals:true "c432"

let test_topoff_dominance_rest () =
  List.iter
    (fun name -> topoff_dominance_differential name)
    [ "c499"; "wide128"; "b01"; "b03" ]

let prop_topoff_dominance_seeds =
  let nl = augmented "c17" in
  let faults = Fault.full_list nl in
  QCheck.Test.make
    ~name:"dominance-collapsed search bit-identical over random seeds"
    ~count:15
    QCheck.(make ~print:string_of_int Gen.(int_bound 9999))
    (fun seed ->
      let run dominance =
        Topoff.run ~generator:Topoff.Use_sat ~seed
          ~ctx:{ Ctx.default with Ctx.dominance } nl ~faults
          ~seed_patterns:[||]
      in
      let r1 = run true and r2 = run false in
      r1.Topoff.total_faults = r2.Topoff.total_faults
      && r1.Topoff.untestable = r2.Topoff.untestable
      && r1.Topoff.aborted = r2.Topoff.aborted
      && r1.Topoff.final_coverage_percent = r2.Topoff.final_coverage_percent
      && r1.Topoff.atpg_calls <= r2.Topoff.atpg_calls)

(* ------------------------------------------------------------------ *)
(* Post-dominator untestability rule (prefilter + NL008)              *)
(* ------------------------------------------------------------------ *)

(* z = nor(and(s, x), x) is just ¬x: propagating s through the AND
   demands x = 1, through the dominating NOR x = 0 — every path from s
   is statically blocked. The per-gate may-differ pass cannot see this
   (each gate's side input is individually free); the post-dominator
   side-requirement rule proves it. *)
let conflict_fixture () =
  let b = B.create "conflict" in
  let s = B.input b "s" in
  let x = B.input b "x" in
  let y = B.and_ b s x in
  let z = B.nor_ b y x in
  B.output b "z" z;
  (B.finalize b, s)

let test_prefilter_dominator_rule () =
  let nl, s = conflict_fixture () in
  let ut = Untestable.analyze nl in
  Alcotest.(check bool) "may-differ pass alone is blind here" true
    (Untestable.stem_observable ut s);
  Metrics.set_enabled true;
  Metrics.reset ();
  let pf = Prefilter.make nl in
  List.iter
    (fun polarity ->
      let f = { Fault.site = Fault.Stem s; Fault.polarity = polarity } in
      Alcotest.(check bool)
        (Fault.to_string f ^ " proved")
        true
        (Prefilter.is_untestable pf f);
      Alcotest.(check bool)
        (Fault.to_string f ^ " SAT-confirmed")
        true
        (Mutsamp_robust.Error.ok_exn (Satgen.generate nl f) = Satgen.Untestable))
    [ Fault.Stuck_at_0; Fault.Stuck_at_1 ];
  let snap = Metrics.snapshot () in
  Metrics.set_enabled false;
  Alcotest.(check bool) "dominator proofs counted" true
    (counter_value snap "analysis.domtree.pruned" > 0);
  Alcotest.(check bool) "domtree build counted" true
    (counter_value snap "analysis.domtree.builds" >= 1)

let test_nl008_fires_on_conflict () =
  let nl, s = conflict_fixture () in
  let diags = Nl_lint.run ~circuit:"conflict" nl in
  let nl008 = List.filter (fun dg -> dg.Diag.rule.Rule.id = "NL008") diags in
  Alcotest.(check int) "exactly one finding" 1 (List.length nl008);
  let dg = List.hd nl008 in
  Alcotest.(check string) "anchored to the blocked stem"
    (Printf.sprintf "net%d" s)
    dg.Diag.loc;
  Alcotest.(check bool) "warning severity" true
    (dg.Diag.rule.Rule.severity = Rule.Warning);
  (* Skipped together with the quadratic observability passes. *)
  let off = Nl_lint.run ~check_observability:false ~circuit:"conflict" nl in
  Alcotest.(check bool) "skipped by check_observability:false" true
    (List.for_all (fun dg -> dg.Diag.rule.Rule.id <> "NL008") off);
  (* Unsound across register boundaries, so gated off on sequential
     netlists: the same blocked cone plus one unrelated flop. *)
  let b = B.create "conflictseq" in
  let s2 = B.input b "s" in
  let x2 = B.input b "x" in
  let q = B.dff b ~init:false in
  B.connect_dff b q ~d:s2;
  B.output b "q" q;
  B.output b "z" (B.nor_ b (B.and_ b s2 x2) x2);
  let seq = B.finalize b in
  let dseq = Nl_lint.run ~circuit:"conflictseq" seq in
  Alcotest.(check bool) "gated off on sequential netlists" true
    (List.for_all (fun dg -> dg.Diag.rule.Rule.id <> "NL008") dseq)

let test_nl007_threshold () =
  let b = B.create "hotspot" in
  let s = B.input b "s" in
  let t = B.input b "t" in
  let u = B.input b "u" in
  let g1 = B.and_ b s t in
  let g2 = B.and_ b s u in
  B.output b "o" (B.or_ b g1 g2);
  let nl = B.finalize b in
  let fired = Nl_lint.run ~hotspot_fanout:2 ~circuit:"hotspot" nl in
  Alcotest.(check bool) "reconvergent stem flagged at threshold 2" true
    (List.exists
       (fun dg ->
         dg.Diag.rule.Rule.id = "NL007"
         && dg.Diag.loc = Printf.sprintf "net%d" s)
       fired);
  let silent = Nl_lint.run ~circuit:"hotspot" nl in
  Alcotest.(check bool) "default threshold is silent" true
    (List.for_all (fun dg -> dg.Diag.rule.Rule.id <> "NL007") silent);
  (* Width without reconvergence is not the smell. *)
  let b2 = B.create "wide" in
  let w = B.input b2 "w" in
  let p = B.input b2 "p" in
  let q = B.input b2 "q" in
  B.output b2 "a" (B.and_ b2 w p);
  B.output b2 "b" (B.and_ b2 w q);
  let nl2 = B.finalize b2 in
  let d2 = Nl_lint.run ~hotspot_fanout:2 ~circuit:"wide" nl2 in
  Alcotest.(check bool) "non-reconvergent fanout is silent" true
    (List.for_all (fun dg -> dg.Diag.rule.Rule.id <> "NL007") d2)

let test_nl009_threshold () =
  let nl, last = chain_fixture () in
  let fired = Nl_lint.run ~max_region:5 ~circuit:"chain" nl in
  Alcotest.(check bool) "oversized region flagged at its head" true
    (List.exists
       (fun dg ->
         dg.Diag.rule.Rule.id = "NL009"
         && dg.Diag.loc = Printf.sprintf "net%d" last)
       fired);
  let silent = Nl_lint.run ~circuit:"chain" nl in
  Alcotest.(check bool) "default threshold is silent" true
    (List.for_all (fun dg -> dg.Diag.rule.Rule.id <> "NL009") silent)

(* ------------------------------------------------------------------ *)
(* Waivers, summary, report section                                   *)
(* ------------------------------------------------------------------ *)

let test_retired_rules () =
  Alcotest.(check int) "two retired ids" 2 (List.length Rule.retired);
  List.iter
    (fun (id, reason) ->
      Alcotest.(check bool) (id ^ " never reused") true (Rule.find id = None);
      Alcotest.(check bool) (id ^ " has a reason") true
        (String.length reason > 0);
      Alcotest.(check bool) (id ^ " found case-insensitively") true
        (Rule.find_retired (String.lowercase_ascii id) = Some (id, reason));
      match Engine.waiver_of_string id with
      | Ok _ -> Alcotest.fail (id ^ ": retired id accepted as waiver")
      | Error msg ->
        Alcotest.(check bool)
          (id ^ ": message names the retirement")
          true
          (String.length msg >= 7 && String.sub msg 0 7 = "retired"))
    Rule.retired;
  Alcotest.(check bool) "unknown id is not retired" true
    (Rule.find_retired "ZZZ999" = None)

let test_waiver_parsing () =
  (match Engine.waiver_of_string "HDL001:selfy" with
   | Ok w ->
     Alcotest.(check string) "rule" "HDL001" w.Engine.rule_id;
     Alcotest.(check string) "loc" "selfy" w.Engine.loc
   | Error e -> Alcotest.fail e);
  (match Engine.waiver_of_string "nl004" with
   | Ok w ->
     Alcotest.(check string) "bare id waives everywhere" "*" w.Engine.loc
   | Error e -> Alcotest.fail e);
  match Engine.waiver_of_string "ZZZ999:x" with
  | Ok _ -> Alcotest.fail "unknown rule id accepted"
  | Error _ -> ()

let test_waivers_applied () =
  let d = parse lintbad_src in
  let waivers =
    List.filter_map
      (fun s -> Result.to_option (Engine.waiver_of_string s))
      [ "HDL006:w"; "HDL004" ]
  in
  let opts = { Engine.default_options with Engine.waivers } in
  let diags = Engine.lint_design opts ~circuit:"lintbad" d in
  let waived = List.filter (fun dg -> dg.Diag.waived) diags in
  Alcotest.(check int) "three waived" 3 (List.length waived);
  Alcotest.(check int) "no unwaived errors" 0 (Engine.error_count ~strict:false diags);
  let summary = Engine.summary diags in
  Alcotest.(check bool) "summary counts waived" true
    (List.assoc_opt "waived" summary = Some 3);
  Alcotest.(check bool) "waived marked in rendering" true
    (List.exists
       (fun dg ->
         dg.Diag.waived
         && String.length (Diag.to_string dg) > 8
         && Diag.to_string dg
            |> fun s ->
            String.sub s (String.length s - 8) 8 = "(waived)")
       diags)

let test_report_section_validates () =
  let d = parse lintbad_src in
  let diags = Engine.lint_design Engine.default_options ~circuit:"lintbad" d in
  Metrics.set_enabled true;
  Metrics.reset ();
  let report =
    Runreport.make ~command:"lint"
      ~extra:[ ("analysis", Engine.report_section diags) ]
      ~spans:[] ~metrics:(Metrics.snapshot ()) ()
  in
  Metrics.set_enabled false;
  (match Runreport.validate report with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  (* Round-trip through the serialized form. *)
  (match Json.parse (Json.to_string report) with
   | Ok json ->
     (match Runreport.validate json with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("round-trip: " ^ e))
   | Error e -> Alcotest.fail ("parse: " ^ e));
  (* A malformed analysis section must be rejected. *)
  let bad =
    Runreport.make ~command:"lint"
      ~extra:[ ("analysis", Json.Obj [ ("findings", Json.String "three") ]) ]
      ~spans:[]
      ~metrics:{ Metrics.counters = []; Metrics.histograms = [] }
      ()
  in
  match Runreport.validate bad with
  | Ok () -> Alcotest.fail "malformed analysis section accepted"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Sampling integration                                               *)
(* ------------------------------------------------------------------ *)

let test_effective_populations () =
  let pops = [ (Operator.ROR, 10); (Operator.LOR, 4); (Operator.CR, 3) ] in
  let discards = [ (Operator.ROR, 6); (Operator.CR, 5) ] in
  let eff = Strategy.effective_populations pops ~discards in
  Alcotest.(check bool) "subtracts per operator" true
    (eff = [ (Operator.ROR, 4); (Operator.LOR, 4); (Operator.CR, 0) ])

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ( "analysis.rules",
      [
        Alcotest.test_case "catalogue sorted and unique" `Quick test_rule_catalogue;
        Alcotest.test_case "find" `Quick test_rule_find;
      ] );
    ( "analysis.constprop",
      [
        Alcotest.test_case "complementary pairs" `Quick
          test_constprop_complementary_pairs;
        Alcotest.test_case "dff pinning" `Quick test_constprop_dff;
      ] );
    ( "analysis.lint",
      [
        Alcotest.test_case "hdl fixture" `Quick test_hdl_lint_fixture;
        Alcotest.test_case "clean design" `Quick test_hdl_lint_clean_design;
        Alcotest.test_case "netlist fixture" `Quick test_netlist_lint_fixture;
        Alcotest.test_case "observability pass off" `Quick
          test_netlist_lint_no_observability;
        Alcotest.test_case "registry lint-clean" `Slow test_registry_lint_clean;
        Alcotest.test_case "NL007 hotspot threshold" `Quick test_nl007_threshold;
        Alcotest.test_case "NL008 dominator conflict" `Quick
          test_nl008_fires_on_conflict;
        Alcotest.test_case "NL009 region threshold" `Quick test_nl009_threshold;
      ] );
    ( "analysis.dataflow",
      [
        Alcotest.test_case "domtree handcrafted" `Quick test_domtree_handcrafted;
        q prop_domtree_random_dags;
        Alcotest.test_case "post-dominators over a netlist" `Quick
          test_postdom_netlist;
        Alcotest.test_case "regions chain fixture" `Quick
          test_regions_chain_fixture;
        Alcotest.test_case "regions/stats agree on the registry" `Slow
          test_regions_stats_registry;
        Alcotest.test_case "cone hash locality" `Quick test_cone_hash_locality;
        Alcotest.test_case "cone groups partition (c432)" `Quick
          test_cone_groups_partition_c432;
      ] );
    ( "analysis.dominance",
      [
        Alcotest.test_case "split is a permutation (c432)" `Quick
          test_dominance_split_permutation;
        Alcotest.test_case "redundancy differential (c17)" `Quick
          test_redundancy_dominance_c17;
        Alcotest.test_case "redundancy differential (c432)" `Slow
          test_redundancy_dominance_c432;
        Alcotest.test_case "topoff differential (c17)" `Quick
          test_topoff_dominance_c17;
        Alcotest.test_case "topoff differential (c432)" `Slow
          test_topoff_dominance_c432;
        Alcotest.test_case "topoff differential (c499/wide128/b01/b03)" `Slow
          test_topoff_dominance_rest;
        q prop_topoff_dominance_seeds;
      ] );
    ( "analysis.triage",
      [
        Alcotest.test_case "b01 counts" `Quick test_triage_counts_b01;
        Alcotest.test_case "b02 counts and diagnostics" `Quick
          test_triage_counts_b02;
        Alcotest.test_case "sequential soundness (b02)" `Slow
          test_triage_sound_sequential;
        q prop_triage_never_discards_killable;
        Alcotest.test_case "extrapolate bit-identical" `Slow
          test_triage_extrapolate_bit_identical;
      ] );
    ( "analysis.untestable",
      [
        Alcotest.test_case "proofs SAT-confirmed (c17)" `Quick
          test_untestable_sound_c17;
        Alcotest.test_case "proofs SAT-confirmed (c432)" `Slow
          test_untestable_sound_c432;
        Alcotest.test_case "pristine c17 clean" `Quick
          test_untestable_none_on_clean_c17;
        Alcotest.test_case "post-dominator rule (prefilter)" `Quick
          test_prefilter_dominator_rule;
        Alcotest.test_case "redundancy differential (c17)" `Quick
          test_redundancy_differential_c17;
        Alcotest.test_case "redundancy differential (c432)" `Slow
          test_redundancy_differential_c432;
        Alcotest.test_case "topoff differential (c17)" `Quick
          test_topoff_differential_c17;
      ] );
    ( "analysis.engine",
      [
        Alcotest.test_case "waiver parsing" `Quick test_waiver_parsing;
        Alcotest.test_case "retired rule ids" `Quick test_retired_rules;
        Alcotest.test_case "waivers applied" `Quick test_waivers_applied;
        Alcotest.test_case "report section validates" `Quick
          test_report_section_validates;
        Alcotest.test_case "effective populations" `Quick
          test_effective_populations;
      ] );
  ]
