(* Tests for lib/serve: the bounded load-shedding queue, the wire
   protocol, and the daemon end-to-end over a real Unix socket —
   request-level fault isolation (malformed payloads, chaos-injected
   worker crashes, overload) always lands a typed reply, warm-store
   requests replay without fault-simulation work, and drain finishes
   in-flight jobs (or budget-cancels them past the grace period) and
   returns. *)

module Bq = Mutsamp_serve.Bq
module Protocol = Mutsamp_serve.Protocol
module Jobs = Mutsamp_serve.Jobs
module Server = Mutsamp_serve.Server
module Client = Mutsamp_serve.Client
module Json = Mutsamp_obs.Json
module Metrics = Mutsamp_obs.Metrics
module Runreport = Mutsamp_obs.Runreport
module Rerror = Mutsamp_robust.Error
module Chaos = Mutsamp_robust.Chaos
module Degrade = Mutsamp_robust.Degrade
module Budget = Mutsamp_robust.Budget
module Store = Mutsamp_store.Store

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* The daemon mutates process-global observability state per request;
   leave everything clean for the rest of the suite. *)
let clean f () =
  Fun.protect
    ~finally:(fun () ->
      Chaos.disarm_all ();
      Degrade.reset ();
      Store.reset_counters ();
      Metrics.reset ();
      Metrics.set_enabled false;
      Budget.set_ambient Budget.unlimited)
    f

(* ------------------------------------------------------------------ *)
(* Bounded queue                                                      *)
(* ------------------------------------------------------------------ *)

let test_bq_sheds_when_full () =
  let q = Bq.create ~capacity:2 in
  check_bool "push 1" true (Bq.try_push q 1);
  check_bool "push 2" true (Bq.try_push q 2);
  check_bool "push 3 shed" false (Bq.try_push q 3);
  check_int "depth" 2 (Bq.depth q);
  check_int "pop 1" 1 (Option.get (Bq.pop q));
  check_bool "slot freed" true (Bq.try_push q 4);
  check_int "pop 2" 2 (Option.get (Bq.pop q));
  check_int "pop 4" 4 (Option.get (Bq.pop q))

let test_bq_close_drains () =
  let q = Bq.create ~capacity:4 in
  ignore (Bq.try_push q "a");
  ignore (Bq.try_push q "b");
  Bq.close q;
  check_bool "push after close shed" false (Bq.try_push q "c");
  check_string "drains a" "a" (Option.get (Bq.pop q));
  check_string "drains b" "b" (Option.get (Bq.pop q));
  check_bool "then None" true (Bq.pop q = None);
  check_bool "closed" true (Bq.closed q)

let test_bq_blocking_pop () =
  let q = Bq.create ~capacity:1 in
  let got = ref None in
  let consumer = Thread.create (fun () -> got := Bq.pop q) () in
  Thread.delay 0.05;
  ignore (Bq.try_push q 42);
  Thread.join consumer;
  check_int "blocked pop woke up" 42 (Option.get !got)

(* ------------------------------------------------------------------ *)
(* Protocol                                                           *)
(* ------------------------------------------------------------------ *)

let test_protocol_parse_ok () =
  (match
     Protocol.parse_request
       {|{"op":"faultsim","circuit":"c17","vectors":64,"id":"r1","deadline_ms":500,"chaos":["fsim:exn"]}|}
   with
   | Ok
       {
         id;
         op = Protocol.Faultsim { circuit; vectors; lfsr; seed };
         deadline_ms;
         chaos;
         engine;
       } ->
     check_string "id" "r1" id;
     check_string "circuit" "c17" circuit;
     check_int "vectors" 64 vectors;
     check_bool "lfsr default" false lfsr;
     check_int "seed default" 2005 seed;
     check_int "deadline" 500 (Option.get deadline_ms);
     Alcotest.(check (list string)) "chaos" [ "fsim:exn" ] chaos;
     check_bool "engine defaults to auto" true (engine = Mutsamp_exec.Ctx.Auto)
   | Ok _ -> Alcotest.fail "wrong op"
   | Error e -> Alcotest.failf "parse failed: %s" (Rerror.to_string e));
  (match
     Protocol.parse_request {|{"op":"faultsim","circuit":"c17","engine":"compiled"}|}
   with
   | Ok { engine = Mutsamp_exec.Ctx.Compiled; _ } -> ()
   | Ok _ -> Alcotest.fail "engine not parsed"
   | Error e -> Alcotest.failf "parse failed: %s" (Rerror.to_string e));
  match Protocol.parse_request {|{"op":"health"}|} with
  | Ok { op = Protocol.Health; id = ""; _ } -> ()
  | _ -> Alcotest.fail "health parse"

let test_protocol_parse_errors () =
  let is_protocol line =
    match Protocol.parse_request line with
    | Error (Rerror.Protocol _) -> ()
    | Error e -> Alcotest.failf "wrong class: %s" (Rerror.class_name e)
    | Ok _ -> Alcotest.failf "accepted %S" line
  in
  is_protocol {|{"op":|};
  is_protocol {|[1,2]|};
  is_protocol {|{"op":"warp"}|};
  is_protocol {|{"op":"faultsim"}|};
  is_protocol {|{"op":"faultsim","circuit":7}|};
  is_protocol {|{"op":"faultsim","circuit":"c17","vectors":0}|};
  is_protocol {|{"op":"atpg","circuit":"c17","generator":"quantum"}|};
  is_protocol {|{"op":"faultsim","circuit":"c17","engine":"quantum"}|};
  is_protocol {|{"op":"faultsim","circuit":"c17","engine":"serial"}|};
  is_protocol {|{"op":"table2","repetitions":0}|};
  is_protocol {|{"op":"sleep","ms":-1}|}

let test_protocol_reply_roundtrip () =
  let ok =
    Protocol.ok_reply ~id:"a" ~op:"faultsim" ~report:(Json.Obj [])
      ~output:"text\n" ()
  in
  (match Protocol.parse_reply (Json.to_compact ok) with
   | Ok (Protocol.Ok_reply { id = "a"; op = "faultsim"; output = "text\n"; report = Some _ }) -> ()
   | _ -> Alcotest.fail "ok roundtrip");
  let err = Protocol.error_reply ~id:"b" (Rerror.Overloaded "queue full") in
  match Protocol.parse_reply (Json.to_compact err) with
  | Ok (Protocol.Error_reply { id = "b"; class_ = "overloaded"; exit_code = 69; _ }) -> ()
  | _ -> Alcotest.fail "error roundtrip"

(* ------------------------------------------------------------------ *)
(* Daemon end-to-end                                                  *)
(* ------------------------------------------------------------------ *)

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

(* Unix socket paths are length-limited (~108 bytes), so make the
   temp directory directly under the system temp root. *)
let with_socket_dir f =
  let dir = Filename.temp_file "mutsamp_serve" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* Start a daemon, run [f] against it, then drain and join. *)
let with_server ?(queue_depth = 4) ?(drain_grace_ms = 400) ?store ?chaos_specs
    dir f =
  let listen = Server.Unix_path (Filename.concat dir "d.sock") in
  let cfg =
    Server.config ~queue_depth ~drain_grace_ms ~idle_timeout_ms:10_000 ?store
      ?chaos_specs listen
  in
  match Server.create cfg with
  | Error e -> Alcotest.failf "server create: %s" (Rerror.to_string e)
  | Ok t ->
    let server = Thread.create Server.run t in
    Fun.protect
      ~finally:(fun () ->
        Server.initiate_drain t;
        Thread.join server)
      (fun () -> f (t, listen))

let connect listen =
  match Client.connect listen with
  | Ok c -> c
  | Error e -> Alcotest.failf "connect: %s" (Rerror.to_string e)

let roundtrip conn json =
  match Client.request ~timeout_ms:30_000 conn json with
  | Ok reply -> reply
  | Error e -> Alcotest.failf "request: %s" (Rerror.to_string e)

let req fields = Json.Obj (("op", Json.String (fst fields)) :: snd fields)

let test_serve_fault_isolation () =
  with_socket_dir @@ fun dir ->
  with_server dir @@ fun (_t, listen) ->
  let conn = connect listen in
  Fun.protect ~finally:(fun () -> Client.close conn)
  @@ fun () ->
  (* Malformed payload: typed protocol reply, connection stays up. *)
  (match Client.request_line ~timeout_ms:30_000 conn {|{"op":|} with
   | Ok line -> (
     match Protocol.parse_reply line with
     | Ok (Protocol.Error_reply { class_ = "protocol"; exit_code = 79; _ }) -> ()
     | _ -> Alcotest.failf "unexpected reply %s" line)
   | Error e -> Alcotest.failf "no reply to malformed line: %s" (Rerror.to_string e));
  (* Chaos-injected worker fault: typed injected reply (78). *)
  (match
     roundtrip conn
       (req
          ( "faultsim",
            [
              ("circuit", Json.String "c17");
              ("vectors", Json.Int 64);
              ("id", Json.String "boom");
              ("chaos", Json.List [ Json.String "fsim:exn" ]);
            ] ))
   with
   | Protocol.Error_reply { id = "boom"; class_ = "injected"; exit_code = 78; _ } -> ()
   | _ -> Alcotest.fail "expected an injected error reply");
  (* The same daemon then serves a healthy request, bit-identical to
     the shared job body (= the batch CLI output), with a schema-valid
     report carrying serve.* context. *)
  match
    roundtrip conn
      (req
         ( "faultsim",
           [
             ("circuit", Json.String "c17");
             ("vectors", Json.Int 64);
             ("id", Json.String "ok1");
           ] ))
  with
  | Protocol.Ok_reply { id = "ok1"; output; report = Some report; _ } ->
    let expected =
      Jobs.faultsim ~ctx:Mutsamp_exec.Ctx.default ~circuit:"c17" ~vectors:64
        ~lfsr:false ~seed:2005
    in
    check_string "output matches the batch body byte-for-byte" expected output;
    (match Runreport.validate report with
     | Ok () -> ()
     | Error msg -> Alcotest.failf "reply report invalid: %s" msg);
    (match Json.member "serve" report with
     | Some (Json.Obj fields) ->
       check_bool "serve.requests present" true
         (List.mem_assoc "requests" fields)
     | _ -> Alcotest.fail "no serve section in reply report")
  | _ -> Alcotest.fail "expected a healthy ok reply"

let test_serve_overload_and_health () =
  with_socket_dir @@ fun dir ->
  with_server ~queue_depth:1 dir @@ fun (_t, listen) ->
  (* Fill the worker (sleep) and the depth-1 queue, then burst more
     sleeps: they must shed with typed overloaded replies while health
     keeps answering inline. *)
  let results = Array.make 4 None in
  let send i =
    Thread.create
      (fun () ->
        let conn = connect listen in
        Fun.protect ~finally:(fun () -> Client.close conn)
        @@ fun () ->
        results.(i) <-
          Some
            (roundtrip conn
               (req
                  ( "sleep",
                    [ ("ms", Json.Int 600); ("id", Json.String (string_of_int i)) ] ))))
      ()
  in
  let first = send 0 in
  (* Deterministic setup: poll the inline stats op until the worker has
     popped the first sleep (queue back to depth 0) before bursting. *)
  let stats_conn = connect listen in
  let picked_up () =
    match roundtrip stats_conn (req ("stats", [])) with
    | Protocol.Ok_reply { output; _ } -> (
      match Json.parse output with
      | Ok doc -> (
        match (Json.member "queue_depth" doc, Json.member "requests" doc) with
        | Some (Json.Int 0), Some (Json.Int r) -> r >= 2
        | _ -> false)
      | Error _ -> Alcotest.fail "stats output is not JSON")
    | _ -> Alcotest.fail "stats must answer inline"
  in
  (* Two consecutive confirmations rule out the instant between the
     sleep's admission and the worker's pop. *)
  let rec await_pickup tries confirmed =
    if tries = 0 then Alcotest.fail "worker never picked up the first sleep";
    if picked_up () then
      if confirmed then ()
      else begin
        Thread.delay 0.02;
        await_pickup (tries - 1) true
      end
    else begin
      Thread.delay 0.01;
      await_pickup (tries - 1) false
    end
  in
  await_pickup 200 false;
  let rest = [ send 1; send 2; send 3 ] in
  Thread.delay 0.1;
  (match roundtrip stats_conn (req ("health", [ ("id", Json.String "h") ])) with
   | Protocol.Ok_reply { id = "h"; output = "ok\n"; _ } -> ()
   | _ -> Alcotest.fail "health must answer during overload");
  Client.close stats_conn;
  Thread.join first;
  List.iter Thread.join rest;
  let ok, overloaded =
    Array.fold_left
      (fun (ok, ov) r ->
        match r with
        | Some (Protocol.Ok_reply _) -> (ok + 1, ov)
        | Some (Protocol.Error_reply { class_ = "overloaded"; exit_code = 69; _ }) ->
          (ok, ov + 1)
        | Some _ -> Alcotest.fail "unexpected reply class"
        | None -> Alcotest.fail "sender thread got no reply")
      (0, 0) results
  in
  (* Worker slot + queue slot succeed; the rest of the burst is shed.
     Scheduling decides which senders win, not how many. *)
  check_int "exactly two sleeps ran" 2 ok;
  check_int "the rest shed immediately" 2 overloaded

let test_serve_drain_cancels_inflight () =
  with_socket_dir @@ fun dir ->
  let listen = Server.Unix_path (Filename.concat dir "d.sock") in
  let cfg = Server.config ~queue_depth:2 ~drain_grace_ms:150 listen in
  let t =
    match Server.create cfg with
    | Ok t -> t
    | Error e -> Alcotest.failf "server create: %s" (Rerror.to_string e)
  in
  let server = Thread.create Server.run t in
  let conn = connect listen in
  let reply = ref None in
  let sender =
    Thread.create
      (fun () ->
        reply :=
          Some
            (roundtrip conn
               (req ("sleep", [ ("ms", Json.Int 30_000); ("id", Json.String "long") ]))))
      ()
  in
  Thread.delay 0.15;
  (* Drain with a 30 s job in flight: the grace period lapses, the
     watchdog expires the request budget, and the sleep loop's next
     poll lands a typed timeout in the client's reply. *)
  Server.initiate_drain t;
  Thread.join server;
  Thread.join sender;
  Client.close conn;
  (match !reply with
   | Some (Protocol.Error_reply { id = "long"; class_ = "timeout"; exit_code = 75; _ }) -> ()
   | Some _ -> Alcotest.fail "expected the drain to cancel the sleep"
   | None -> Alcotest.fail "no reply before drain completed");
  (* Late connections are refused (socket gone) — drain really stopped
     the daemon. *)
  match Client.connect ~policy:(Client.Retry.policy ~max_attempts:1 ()) listen with
  | Error _ -> ()
  | Ok c ->
    Client.close c;
    Alcotest.fail "socket must be closed after drain"

let test_serve_warm_store_replay () =
  with_socket_dir @@ fun dir ->
  let store_dir = Filename.concat dir "store" in
  let store =
    match Store.open_dir store_dir with
    | Ok s -> s
    | Error e -> Alcotest.failf "store: %s" (Rerror.to_string e)
  in
  with_server ~store dir @@ fun (_t, listen) ->
  let conn = connect listen in
  Fun.protect ~finally:(fun () -> Client.close conn)
  @@ fun () ->
  let fsim id =
    req
      ( "faultsim",
        [
          ("circuit", Json.String "c17");
          ("vectors", Json.Int 48);
          ("id", Json.String id);
        ] )
  in
  let cold =
    match roundtrip conn (fsim "cold") with
    | Protocol.Ok_reply { output; _ } -> output
    | _ -> Alcotest.fail "cold request failed"
  in
  match roundtrip conn (fsim "warm") with
  | Protocol.Ok_reply { output; report = Some report; _ } ->
    check_string "warm output bit-identical to cold" cold output;
    let counters =
      match Json.member "metrics" report with
      | Some m -> (
        match Json.member "counters" m with
        | Some (Json.Obj cs) -> cs
        | _ -> [])
      | None -> []
    in
    (* The acceptance bar: the warm daemon request did zero fault
       simulation — not one fsim.* counter moved in its own snapshot —
       and its store section shows the hit. *)
    List.iter
      (fun (name, v) ->
        check_bool
          (Printf.sprintf "unexpected %s=%s on warm request" name
             (Json.to_compact v))
          false
          (String.length name >= 5 && String.sub name 0 5 = "fsim."))
      counters;
    (match Json.member "store" report with
     | Some s -> (
       match Json.member "hits" s with
       | Some (Json.Int h) -> check_bool "store hit recorded" true (h >= 1)
       | _ -> Alcotest.fail "store.hits missing from warm report")
     | None -> Alcotest.fail "no store section in warm report")
  | _ -> Alcotest.fail "warm request failed"

let suite =
  [
    ( "serve.queue",
      [
        Alcotest.test_case "sheds when full" `Quick (clean test_bq_sheds_when_full);
        Alcotest.test_case "close drains" `Quick (clean test_bq_close_drains);
        Alcotest.test_case "blocking pop" `Quick (clean test_bq_blocking_pop);
      ] );
    ( "serve.protocol",
      [
        Alcotest.test_case "request parsing" `Quick (clean test_protocol_parse_ok);
        Alcotest.test_case "typed parse failures" `Quick
          (clean test_protocol_parse_errors);
        Alcotest.test_case "reply roundtrip" `Quick
          (clean test_protocol_reply_roundtrip);
      ] );
    ( "serve.daemon",
      [
        Alcotest.test_case "fault isolation end to end" `Quick
          (clean test_serve_fault_isolation);
        Alcotest.test_case "overload sheds, health answers" `Quick
          (clean test_serve_overload_and_health);
        Alcotest.test_case "drain cancels in-flight work" `Quick
          (clean test_serve_drain_cancels_inflight);
        Alcotest.test_case "warm store replay" `Quick
          (clean test_serve_warm_store_replay);
      ] );
  ]
