(* Tests for lib/sat: CNF, CDCL solver (vs brute force), Tseitin
   encoding, miter equivalence. *)

module Cnf = Mutsamp_sat.Cnf
module Solver = Mutsamp_sat.Solver
module Tseitin = Mutsamp_sat.Tseitin
module Equiv = Mutsamp_sat.Equiv
module Netlist = Mutsamp_netlist.Netlist
module Bitsim = Mutsamp_netlist.Bitsim
module B = Netlist.Builder
module Parser = Mutsamp_hdl.Parser
module Check = Mutsamp_hdl.Check
module Flow = Mutsamp_synth.Flow

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let parse src =
  Check.elaborate (Mutsamp_robust.Error.ok_exn (Parser.design_result src))

(* The result-typed entry points, unwrapped: these tests exercise solver
   correctness, so any engine error is a straight failure. *)
let solve ?assumptions cnf =
  Mutsamp_robust.Error.ok_exn (Solver.solve ?assumptions cnf)

let equiv a b = Mutsamp_robust.Error.ok_exn (Equiv.check a b)

(* ------------------------------------------------------------------ *)
(* Cnf                                                                *)
(* ------------------------------------------------------------------ *)

let test_cnf_basics () =
  let c = Cnf.create () in
  let a = Cnf.new_var c and b = Cnf.new_var c in
  check_int "two vars" 2 (Cnf.num_vars c);
  Cnf.add_clause c [ a; -b ];
  check_int "one clause" 1 (Cnf.num_clauses c);
  Cnf.add_clause c [ a; -a ];
  check_int "tautology dropped" 1 (Cnf.num_clauses c);
  Cnf.add_clause c [ a; a; -b ];
  check_int "dup literals collapse" 2 (Cnf.num_clauses c);
  (match (Cnf.clauses c).(1) with
   | [| x; y |] -> check_bool "two literals kept" true (x <> 0 && y <> 0)
   | _ -> Alcotest.fail "expected binary clause")

let test_cnf_rejects_bad () =
  let c = Cnf.create () in
  let a = Cnf.new_var c in
  (try Cnf.add_clause c []; Alcotest.fail "empty" with Invalid_argument _ -> ());
  (try Cnf.add_clause c [ 0 ]; Alcotest.fail "zero" with Invalid_argument _ -> ());
  (try Cnf.add_clause c [ a + 5 ]; Alcotest.fail "unallocated" with Invalid_argument _ -> ())

(* ------------------------------------------------------------------ *)
(* Solver                                                             *)
(* ------------------------------------------------------------------ *)

let test_solver_trivial_sat () =
  let c = Cnf.create () in
  let a = Cnf.new_var c in
  Cnf.add_clause c [ a ];
  (match solve c with
   | Solver.Sat m -> check_bool "a true" true m.(a)
   | Solver.Unsat -> Alcotest.fail "should be sat")

let test_solver_trivial_unsat () =
  let c = Cnf.create () in
  let a = Cnf.new_var c in
  Cnf.add_clause c [ a ];
  Cnf.add_clause c [ -a ];
  (match solve c with
   | Solver.Unsat -> ()
   | Solver.Sat _ -> Alcotest.fail "should be unsat")

let test_solver_implication_chain () =
  (* a, a->b, b->c, ..., forces all true. *)
  let c = Cnf.create () in
  let vars = Array.init 20 (fun _ -> Cnf.new_var c) in
  Cnf.add_clause c [ vars.(0) ];
  for i = 0 to 18 do
    Cnf.add_clause c [ -vars.(i); vars.(i + 1) ]
  done;
  (match solve c with
   | Solver.Sat m -> Array.iter (fun v -> check_bool "chained true" true m.(v)) vars
   | Solver.Unsat -> Alcotest.fail "should be sat")

let test_solver_pigeonhole_unsat () =
  (* PHP(4,3): 4 pigeons, 3 holes — classically UNSAT and needs real
     search. Variable p(i,h) = pigeon i in hole h. *)
  let c = Cnf.create () in
  let p = Array.init 4 (fun _ -> Array.init 3 (fun _ -> Cnf.new_var c)) in
  for i = 0 to 3 do
    Cnf.add_clause c [ p.(i).(0); p.(i).(1); p.(i).(2) ]
  done;
  for h = 0 to 2 do
    for i = 0 to 3 do
      for j = i + 1 to 3 do
        Cnf.add_clause c [ -p.(i).(h); -p.(j).(h) ]
      done
    done
  done;
  (match solve c with
   | Solver.Unsat -> ()
   | Solver.Sat _ -> Alcotest.fail "pigeonhole should be unsat")

let test_solver_assumptions () =
  let c = Cnf.create () in
  let a = Cnf.new_var c and b = Cnf.new_var c in
  Cnf.add_clause c [ a; b ];
  (match solve ~assumptions:[ -a ] c with
   | Solver.Sat m ->
     check_bool "a false" false m.(a);
     check_bool "b true" true m.(b)
   | Solver.Unsat -> Alcotest.fail "sat under assumption");
  (match solve ~assumptions:[ -a; -b ] c with
   | Solver.Unsat -> ()
   | Solver.Sat _ -> Alcotest.fail "unsat under assumptions")

(* Brute-force reference decision procedure. *)
let brute_force cnf =
  let n = Cnf.num_vars cnf in
  let cls = Cnf.clauses cnf in
  let rec try_assign code =
    if code >= 1 lsl n then None
    else begin
      let model = Array.make (n + 1) false in
      for v = 1 to n do
        model.(v) <- (code lsr (v - 1)) land 1 = 1
      done;
      let ok =
        Array.for_all
          (fun c -> Array.exists (fun l -> if l > 0 then model.(l) else not model.(-l)) c)
          cls
      in
      if ok then Some model else try_assign (code + 1)
    end
  in
  try_assign 0

let random_cnf_gen =
  QCheck.Gen.(
    int_range 3 8 >>= fun nvars ->
    int_range 1 25 >>= fun nclauses ->
    list_size (return nclauses)
      (list_size (int_range 1 3)
         (pair (int_range 1 nvars) bool >|= fun (v, sign) -> if sign then v else -v))
    >|= fun cls -> (nvars, cls))

let prop_solver_matches_bruteforce =
  let arb =
    QCheck.make
      ~print:(fun (n, cls) ->
        Printf.sprintf "%d vars: %s" n
          (String.concat " ; "
             (List.map (fun c -> String.concat "," (List.map string_of_int c)) cls)))
      random_cnf_gen
  in
  QCheck.Test.make ~name:"CDCL agrees with brute force" ~count:400 arb
    (fun (nvars, cls) ->
      let cnf = Cnf.create () in
      for _ = 1 to nvars do
        ignore (Cnf.new_var cnf)
      done;
      List.iter (fun c -> Cnf.add_clause cnf c) cls;
      match solve cnf, brute_force cnf with
      | Solver.Sat model, Some _ -> Solver.is_satisfying cnf model
      | Solver.Unsat, None -> true
      | Solver.Sat _, None | Solver.Unsat, Some _ -> false)

(* ------------------------------------------------------------------ *)
(* Tseitin                                                            *)
(* ------------------------------------------------------------------ *)

let full_adder_netlist () =
  let b = B.create "fa" in
  let a = B.input b "a" and bb = B.input b "b" and cin = B.input b "cin" in
  let s = B.xor_ b (B.xor_ b a bb) cin in
  let cout = B.or_ b (B.and_ b a bb) (B.or_ b (B.and_ b a cin) (B.and_ b bb cin)) in
  B.output b "s" s;
  B.output b "cout" cout;
  B.finalize b

(* Check the encoding agrees with simulation on every input vector. *)
let test_tseitin_full_adder_consistent () =
  let nl = full_adder_netlist () in
  let sim = Bitsim.create nl in
  for code = 0 to 7 do
    let cnf = Cnf.create () in
    let enc = Tseitin.encode ~into:cnf nl in
    let assumptions =
      List.mapi
        (fun k net ->
          let v = enc.Tseitin.var_of_net.(net) in
          if (code lsr k) land 1 = 1 then v else -v)
        (Array.to_list nl.Netlist.input_nets)
    in
    match solve ~assumptions cnf with
    | Solver.Unsat -> Alcotest.fail "encoding inconsistent"
    | Solver.Sat model ->
      let inputs =
        Array.init 3 (fun k -> if (code lsr k) land 1 = 1 then Bitsim.all_ones else 0)
      in
      let outs = Bitsim.step sim inputs in
      let s_net = Netlist.find_output nl "s" in
      let cout_net = Netlist.find_output nl "cout" in
      check_bool "s agrees" true
        (model.(enc.Tseitin.var_of_net.(s_net)) = (outs.(0) land 1 = 1));
      check_bool "cout agrees" true
        (model.(enc.Tseitin.var_of_net.(cout_net)) = (outs.(1) land 1 = 1))
  done

let test_tseitin_xor_or_helpers () =
  let cnf = Cnf.create () in
  let a = Cnf.new_var cnf and b = Cnf.new_var cnf in
  let x = Tseitin.xor_out cnf a b in
  let o = Tseitin.or_list cnf [ a; b ] in
  (* force a=1, b=0: x must be 1, o must be 1 *)
  (match solve ~assumptions:[ a; -b; -x ] cnf with
   | Solver.Unsat -> ()
   | Solver.Sat _ -> Alcotest.fail "xor must be 1");
  (match solve ~assumptions:[ a; -b; -o ] cnf with
   | Solver.Unsat -> ()
   | Solver.Sat _ -> Alcotest.fail "or must be 1");
  (match solve ~assumptions:[ -a; -b; o ] cnf with
   | Solver.Unsat -> ()
   | Solver.Sat _ -> Alcotest.fail "or must be 0")

(* ------------------------------------------------------------------ *)
(* Equiv                                                              *)
(* ------------------------------------------------------------------ *)

let alu_src =
  {|design alu is
  input a : unsigned(4);
  input b : unsigned(4);
  output y : unsigned(4);
  output c : bit;
begin
  y := a + b;
  c := a < b;
end design;|}

let test_equiv_self () =
  let nl = Flow.synthesize (parse alu_src) in
  (match equiv nl nl with
   | Equiv.Equivalent -> ()
   | Equiv.Counterexample _ -> Alcotest.fail "self-equivalence")

let test_equiv_detects_difference () =
  let nl1 = Flow.synthesize (parse alu_src) in
  let nl2 =
    Flow.synthesize
      (parse
         {|design alu is
  input a : unsigned(4);
  input b : unsigned(4);
  output y : unsigned(4);
  output c : bit;
begin
  y := a + b;
  c := a <= b;
end design;|})
  in
  (match equiv nl1 nl2 with
   | Equiv.Counterexample cex ->
     check_bool "counterexample replays" true (Equiv.counterexample_is_real nl1 nl2 cex)
   | Equiv.Equivalent -> Alcotest.fail "should differ")

let test_equiv_structurally_different_but_equal () =
  (* xor via xor gate vs xor via and/or/not. *)
  let direct =
    let b = B.create "x1" in
    let p = B.input b "p" and q = B.input b "q" in
    B.output b "y" (B.xor_ b p q);
    B.finalize b
  in
  let expanded =
    let b = B.create "x2" in
    let p = B.input b "p" and q = B.input b "q" in
    let y = B.or_ b (B.and_ b p (B.not_ b q)) (B.and_ b (B.not_ b p) q) in
    B.output b "y" y;
    B.finalize b
  in
  (match equiv direct expanded with
   | Equiv.Equivalent -> ()
   | Equiv.Counterexample _ -> Alcotest.fail "xor forms should match")

let test_equiv_rejects_sequential () =
  let b = B.create "seq" in
  let x = B.input b "x" in
  let q = B.dff b ~init:false in
  B.connect_dff b q ~d:x;
  B.output b "y" q;
  let nl = B.finalize b in
  (try
     ignore (equiv nl nl);
     Alcotest.fail "should reject"
   with Equiv.Equiv_error _ -> ())

let test_equiv_rejects_interface_mismatch () =
  let nl1 = Flow.synthesize (parse alu_src) in
  let nl2 = full_adder_netlist () in
  (try
     ignore (equiv nl1 nl2);
     Alcotest.fail "should reject"
   with Equiv.Equiv_error _ -> ())

(* Property: the miter agrees with exhaustive comparison for random
   small gate mutations of the full adder. *)
let prop_equiv_matches_exhaustive =
  let gen = QCheck.Gen.(pair (int_range 0 100) (int_range 0 5)) in
  QCheck.Test.make ~name:"miter agrees with exhaustive check" ~count:50
    (QCheck.make gen) (fun (seed, _) ->
      (* Mutate one random gate kind of the full adder. *)
      let nl = full_adder_netlist () in
      let prng = Mutsamp_util.Prng.create seed in
      let candidates =
        Array.to_list
          (Array.mapi (fun i (g : Mutsamp_netlist.Gate.t) -> (i, g)) nl.Netlist.gates)
        |> List.filter (fun (_, (g : Mutsamp_netlist.Gate.t)) ->
               match g.kind with
               | Mutsamp_netlist.Gate.And | Mutsamp_netlist.Gate.Or
               | Mutsamp_netlist.Gate.Xor -> true
               | _ -> false)
      in
      let idx, g = Mutsamp_util.Prng.pick_list prng candidates in
      let new_kind =
        Mutsamp_util.Prng.pick_list prng
          (List.filter
             (fun k -> k <> g.Mutsamp_netlist.Gate.kind)
             [ Mutsamp_netlist.Gate.And; Mutsamp_netlist.Gate.Or;
               Mutsamp_netlist.Gate.Nand; Mutsamp_netlist.Gate.Xor ])
      in
      let gates = Array.copy nl.Netlist.gates in
      gates.(idx) <- { g with Mutsamp_netlist.Gate.kind = new_kind };
      let mutated = { nl with Netlist.gates } in
      (* Exhaustive comparison. *)
      let sim_a = Bitsim.create nl and sim_b = Bitsim.create mutated in
      let equal_exhaustive =
        List.for_all
          (fun code ->
            let ins = Array.init 3 (fun k -> if (code lsr k) land 1 = 1 then Bitsim.all_ones else 0) in
            Bitsim.step sim_a ins = Bitsim.step sim_b ins)
          (List.init 8 (fun i -> i))
      in
      match equiv nl mutated with
      | Equiv.Equivalent -> equal_exhaustive
      | Equiv.Counterexample cex ->
        (not equal_exhaustive) && Equiv.counterexample_is_real nl mutated cex)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ( "sat.cnf",
      [
        Alcotest.test_case "basics" `Quick test_cnf_basics;
        Alcotest.test_case "rejects bad clauses" `Quick test_cnf_rejects_bad;
      ] );
    ( "sat.solver",
      [
        Alcotest.test_case "trivial sat" `Quick test_solver_trivial_sat;
        Alcotest.test_case "trivial unsat" `Quick test_solver_trivial_unsat;
        Alcotest.test_case "implication chain" `Quick test_solver_implication_chain;
        Alcotest.test_case "pigeonhole unsat" `Quick test_solver_pigeonhole_unsat;
        Alcotest.test_case "assumptions" `Quick test_solver_assumptions;
        q prop_solver_matches_bruteforce;
      ] );
    ( "sat.tseitin",
      [
        Alcotest.test_case "full adder consistent" `Quick test_tseitin_full_adder_consistent;
        Alcotest.test_case "xor/or helpers" `Quick test_tseitin_xor_or_helpers;
      ] );
    ( "sat.equiv",
      [
        Alcotest.test_case "self" `Quick test_equiv_self;
        Alcotest.test_case "detects difference" `Quick test_equiv_detects_difference;
        Alcotest.test_case "structural variants equal" `Quick test_equiv_structurally_different_but_equal;
        Alcotest.test_case "rejects sequential" `Quick test_equiv_rejects_sequential;
        Alcotest.test_case "rejects interface mismatch" `Quick test_equiv_rejects_interface_mismatch;
        q prop_equiv_matches_exhaustive;
      ] );
  ]
