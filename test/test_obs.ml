(* Tests for the observability library: spans, metrics, JSON and run
   reports, plus the instrumentation wired into the core pipeline. *)

module Trace = Mutsamp_obs.Trace
module Metrics = Mutsamp_obs.Metrics
module Json = Mutsamp_obs.Json
module Runreport = Mutsamp_obs.Runreport
module Registry = Mutsamp_circuits.Registry
module Pipeline = Mutsamp_core.Pipeline

(* Local stand-ins for the deprecated Fsim int-code conveniences. *)
let pattern_of_code nl code =
  Mutsamp_fault.Pattern.of_code
    ~inputs:(Array.length nl.Mutsamp_netlist.Netlist.input_nets)
    code

let patterns_of_codes nl codes = Array.map (pattern_of_code nl) codes


(* Every test drives the same process-global collector; start clean and
   leave it disabled for the rest of the suite. *)
let with_clean_obs f () =
  Trace.set_enabled false;
  Trace.reset ();
  Metrics.set_enabled false;
  Metrics.reset ();
  Fun.protect
    ~finally:(fun () ->
      Trace.set_enabled false;
      Trace.reset ();
      Metrics.set_enabled false;
      Metrics.reset ())
    f

(* ------------------------------------------------------------------ *)
(* Trace                                                              *)
(* ------------------------------------------------------------------ *)

let test_span_nesting () =
  Trace.set_enabled true;
  Trace.reset ();
  Trace.with_span "outer" (fun () ->
      Trace.with_span "first" (fun () -> ());
      Trace.with_span "second" ~attrs:[ ("k", "v") ] (fun () ->
          Trace.with_span "grandchild" (fun () -> ())));
  match Trace.roots () with
  | [ outer ] ->
    Alcotest.(check string) "root name" "outer" outer.Trace.name;
    Alcotest.(check (list string))
      "children in open order" [ "first"; "second" ]
      (List.map (fun (s : Trace.span) -> s.Trace.name) outer.Trace.children);
    let second = List.nth outer.Trace.children 1 in
    Alcotest.(check (list string))
      "nested child" [ "grandchild" ]
      (List.map (fun (s : Trace.span) -> s.Trace.name) second.Trace.children);
    Alcotest.(check (list (pair string string)))
      "attrs kept" [ ("k", "v") ] second.Trace.attrs;
    Alcotest.(check bool) "durations nest" true
      (List.for_all
         (fun (c : Trace.span) -> c.Trace.duration_s <= outer.Trace.duration_s)
         outer.Trace.children)
  | roots -> Alcotest.failf "expected one root, got %d" (List.length roots)

let test_span_disabled () =
  (* Disabled collection records nothing and passes values through. *)
  let v = Trace.with_span "ghost" (fun () -> 42) in
  Alcotest.(check int) "value passes through" 42 v;
  Alcotest.(check int) "nothing recorded" 0 (List.length (Trace.roots ()))

let test_span_exception () =
  Trace.set_enabled true;
  Trace.reset ();
  (try Trace.with_span "boom" (fun () -> failwith "expected") with
   | Failure _ -> ());
  match Trace.roots () with
  | [ s ] ->
    Alcotest.(check (list (pair string string)))
      "error attr" [ ("error", "true") ] s.Trace.attrs
  | _ -> Alcotest.fail "span not closed on exception"

let test_span_timed () =
  (* with_span_timed reports elapsed time even while disabled. *)
  let v, dt = Trace.with_span_timed "t" (fun () -> 7) in
  Alcotest.(check int) "value" 7 v;
  Alcotest.(check bool) "non-negative duration" true (dt >= 0.);
  Alcotest.(check int) "still nothing recorded" 0 (List.length (Trace.roots ()))

(* ------------------------------------------------------------------ *)
(* Metrics                                                            *)
(* ------------------------------------------------------------------ *)

let test_counters () =
  Metrics.set_enabled true;
  Metrics.reset ();
  let c = Metrics.counter "test.obs.hits" in
  Metrics.incr c;
  Metrics.incr c;
  Metrics.add c 3;
  Metrics.add_named "test.obs.named" 4;
  let snap = Metrics.snapshot () in
  Alcotest.(check (option int))
    "counter total" (Some 5)
    (List.assoc_opt "test.obs.hits" snap.Metrics.counters);
  Alcotest.(check (option int))
    "named counter" (Some 4)
    (List.assoc_opt "test.obs.named" snap.Metrics.counters)

let test_counters_disabled () =
  let c = Metrics.counter "test.obs.cold" in
  Metrics.incr c;
  Metrics.add c 10;
  Metrics.observe_named "test.obs.cold_hist" 1.0;
  let snap = Metrics.snapshot () in
  Alcotest.(check (option int))
    "no count while disabled" None
    (List.assoc_opt "test.obs.cold" snap.Metrics.counters);
  Alcotest.(check bool) "no histogram while disabled" true
    (not (List.mem_assoc "test.obs.cold_hist" snap.Metrics.histograms))

let test_histograms () =
  Metrics.set_enabled true;
  Metrics.reset ();
  let h = Metrics.histogram "test.obs.sizes" in
  List.iter (Metrics.observe h) [ 2.; 8.; 5. ];
  let snap = Metrics.snapshot () in
  match List.assoc_opt "test.obs.sizes" snap.Metrics.histograms with
  | None -> Alcotest.fail "histogram missing from snapshot"
  | Some s ->
    Alcotest.(check int) "n" 3 s.Metrics.n;
    Alcotest.(check (float 1e-9)) "sum" 15. s.Metrics.sum;
    Alcotest.(check (float 1e-9)) "min" 2. s.Metrics.min_v;
    Alcotest.(check (float 1e-9)) "max" 8. s.Metrics.max_v

let test_metrics_reset () =
  Metrics.set_enabled true;
  Metrics.reset ();
  let c = Metrics.counter "test.obs.resettable" in
  Metrics.incr c;
  Metrics.reset ();
  Alcotest.(check int) "snapshot empty after reset" 0
    (List.length (Metrics.snapshot ()).Metrics.counters);
  (* The handle survives reset and keeps counting. *)
  Metrics.incr c;
  Alcotest.(check (option int))
    "handle still live" (Some 1)
    (List.assoc_opt "test.obs.resettable" (Metrics.snapshot ()).Metrics.counters)

(* ------------------------------------------------------------------ *)
(* JSON                                                               *)
(* ------------------------------------------------------------------ *)

let golden_json =
  "{\n\
  \  \"b\": true,\n\
  \  \"f\": 1.5,\n\
  \  \"i\": -3,\n\
  \  \"l\": [\n\
  \    1,\n\
  \    \"two\"\n\
  \  ],\n\
  \  \"n\": null,\n\
  \  \"s\": \"a\\\"b\\\\c\"\n\
   }\n"

let golden_value =
  Json.Obj
    [
      ("b", Json.Bool true);
      ("f", Json.Float 1.5);
      ("i", Json.Int (-3));
      ("l", Json.List [ Json.Int 1; Json.String "two" ]);
      ("n", Json.Null);
      ("s", Json.String "a\"b\\c");
    ]

let test_json_golden () =
  (* The printed form is stable — diffs of committed reports stay
     readable. *)
  Alcotest.(check string) "golden output" golden_json (Json.to_string golden_value)

let test_json_roundtrip () =
  match Json.parse (Json.to_string golden_value) with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok v -> Alcotest.(check bool) "round trip" true (Json.equal golden_value v)

let test_json_float_roundtrip () =
  let vals = [ 0.1; -1e-9; 3.141592653589793; 1e300; 2.0 ] in
  List.iter
    (fun f ->
      match Json.parse (Json.to_string (Json.Float f)) with
      | Ok (Json.Float g) ->
        Alcotest.(check (float 0.)) (Printf.sprintf "float %h" f) f g
      | Ok _ -> Alcotest.failf "float %h re-parsed as non-float" f
      | Error e -> Alcotest.failf "float %h: %s" f e)
    vals

let test_json_parse_errors () =
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "accepted invalid JSON %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2" ]

(* ------------------------------------------------------------------ *)
(* Run reports                                                        *)
(* ------------------------------------------------------------------ *)

let sample_report () =
  Trace.set_enabled true;
  Trace.reset ();
  Metrics.set_enabled true;
  Metrics.reset ();
  Trace.with_span "root" (fun () -> Trace.with_span "child" (fun () -> ()));
  Metrics.add_named "test.obs.report_counter" 2;
  Metrics.observe_named "test.obs.report_hist" 1.0;
  Runreport.make ~command:"test" ~circuits:[ "c17" ] ~seed:7
    ~spans:(Trace.roots ()) ~metrics:(Metrics.snapshot ()) ()

let test_report_validates () =
  match Runreport.validate (sample_report ()) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "report should validate: %s" e

let test_report_roundtrip_validates () =
  let text = Json.to_string (sample_report ()) in
  match Json.parse text with
  | Error e -> Alcotest.failf "report text unparsable: %s" e
  | Ok v ->
    (match Runreport.validate v with
     | Ok () -> ()
     | Error e -> Alcotest.failf "parsed report invalid: %s" e)

let test_report_rejects_bad_schema () =
  let bad =
    Json.Obj
      [
        ("schema", Json.Int 999);
        ("tool", Json.String "mutsamp");
        ("command", Json.String "x");
        ("spans", Json.List []);
        ("metrics", Json.Obj [ ("counters", Json.Obj []); ("histograms", Json.Obj []) ]);
      ]
  in
  match Runreport.validate bad with
  | Ok () -> Alcotest.fail "schema 999 accepted"
  | Error _ -> ()

let test_report_rejects_malformed_span () =
  let bad =
    Json.Obj
      [
        ("schema", Json.Int Runreport.schema_version);
        ("tool", Json.String "mutsamp");
        ("command", Json.String "x");
        ("spans", Json.List [ Json.Obj [ ("name", Json.String "s") ] ]);
        ("metrics", Json.Obj [ ("counters", Json.Obj []); ("histograms", Json.Obj []) ]);
      ]
  in
  match Runreport.validate bad with
  | Ok () -> Alcotest.fail "span without timing accepted"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Pipeline instrumentation                                           *)
(* ------------------------------------------------------------------ *)

let test_pipeline_prepare_spans () =
  Trace.set_enabled true;
  Trace.reset ();
  let e = Option.get (Registry.find "c17") in
  let (_ : Pipeline.t) = Pipeline.prepare (e.Registry.design ()) in
  match Trace.roots () with
  | [ prepare ] ->
    Alcotest.(check string) "root" "prepare" prepare.Trace.name;
    Alcotest.(check (list string))
      "phases" [ "synth"; "collapse"; "mutants" ]
      (List.map (fun (s : Trace.span) -> s.Trace.name) prepare.Trace.children);
    Alcotest.(check bool) "fault count attr" true
      (List.mem_assoc "faults" prepare.Trace.attrs)
  | roots -> Alcotest.failf "expected one root, got %d" (List.length roots)

let test_pipeline_fsim_counters () =
  Metrics.set_enabled true;
  Metrics.reset ();
  let e = Option.get (Registry.find "c17") in
  let p = Pipeline.prepare (e.Registry.design ()) in
  let r =
    Pipeline.fault_simulate p
      (patterns_of_codes p.Pipeline.netlist
         [| 0b01010; 0b11111; 0b00000; 0b10101 |])
  in
  let snap = Metrics.snapshot () in
  Alcotest.(check (option int))
    "patterns counted" (Some 4)
    (List.assoc_opt "fsim.patterns_simulated" snap.Metrics.counters);
  Alcotest.(check (option int))
    "detections counted" (Some r.Mutsamp_fault.Fsim.detected)
    (List.assoc_opt "fsim.faults_detected" snap.Metrics.counters)

let suite =
  [
    ( "obs",
      [
        Alcotest.test_case "span nesting" `Quick (with_clean_obs test_span_nesting);
        Alcotest.test_case "span disabled" `Quick (with_clean_obs test_span_disabled);
        Alcotest.test_case "span exception" `Quick (with_clean_obs test_span_exception);
        Alcotest.test_case "span timed" `Quick (with_clean_obs test_span_timed);
        Alcotest.test_case "counters" `Quick (with_clean_obs test_counters);
        Alcotest.test_case "counters disabled" `Quick
          (with_clean_obs test_counters_disabled);
        Alcotest.test_case "histograms" `Quick (with_clean_obs test_histograms);
        Alcotest.test_case "metrics reset" `Quick (with_clean_obs test_metrics_reset);
        Alcotest.test_case "json golden" `Quick test_json_golden;
        Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
        Alcotest.test_case "json float roundtrip" `Quick test_json_float_roundtrip;
        Alcotest.test_case "json parse errors" `Quick test_json_parse_errors;
        Alcotest.test_case "report validates" `Quick
          (with_clean_obs test_report_validates);
        Alcotest.test_case "report roundtrip validates" `Quick
          (with_clean_obs test_report_roundtrip_validates);
        Alcotest.test_case "report rejects bad schema" `Quick
          test_report_rejects_bad_schema;
        Alcotest.test_case "report rejects malformed span" `Quick
          test_report_rejects_malformed_span;
        Alcotest.test_case "pipeline prepare spans" `Quick
          (with_clean_obs test_pipeline_prepare_spans);
        Alcotest.test_case "pipeline fsim counters" `Quick
          (with_clean_obs test_pipeline_fsim_counters);
      ] );
  ]
