(* Tests for the observability library: spans, metrics, JSON and run
   reports, plus the instrumentation wired into the core pipeline. *)

module Trace = Mutsamp_obs.Trace
module Metrics = Mutsamp_obs.Metrics
module Json = Mutsamp_obs.Json
module Runreport = Mutsamp_obs.Runreport
module Profile = Mutsamp_obs.Profile
module Traceout = Mutsamp_obs.Traceout
module Benchdiff = Mutsamp_obs.Benchdiff
module Registry = Mutsamp_circuits.Registry
module Pipeline = Mutsamp_core.Pipeline

(* Local stand-ins for the deprecated Fsim int-code conveniences. *)
let pattern_of_code nl code =
  Mutsamp_fault.Pattern.of_code
    ~inputs:(Array.length nl.Mutsamp_netlist.Netlist.input_nets)
    code

let patterns_of_codes nl codes = Array.map (pattern_of_code nl) codes


(* Every test drives the same process-global collector; start clean and
   leave it disabled for the rest of the suite. *)
let with_clean_obs f () =
  Trace.set_enabled false;
  Trace.reset ();
  Metrics.set_enabled false;
  Metrics.reset ();
  Fun.protect
    ~finally:(fun () ->
      Trace.set_enabled false;
      Trace.reset ();
      Metrics.set_enabled false;
      Metrics.reset ())
    f

(* ------------------------------------------------------------------ *)
(* Trace                                                              *)
(* ------------------------------------------------------------------ *)

let test_span_nesting () =
  Trace.set_enabled true;
  Trace.reset ();
  Trace.with_span "outer" (fun () ->
      Trace.with_span "first" (fun () -> ());
      Trace.with_span "second" ~attrs:[ ("k", "v") ] (fun () ->
          Trace.with_span "grandchild" (fun () -> ())));
  match Trace.roots () with
  | [ outer ] ->
    Alcotest.(check string) "root name" "outer" outer.Trace.name;
    Alcotest.(check (list string))
      "children in open order" [ "first"; "second" ]
      (List.map (fun (s : Trace.span) -> s.Trace.name) outer.Trace.children);
    let second = List.nth outer.Trace.children 1 in
    Alcotest.(check (list string))
      "nested child" [ "grandchild" ]
      (List.map (fun (s : Trace.span) -> s.Trace.name) second.Trace.children);
    Alcotest.(check (list (pair string string)))
      "attrs kept" [ ("k", "v") ] second.Trace.attrs;
    Alcotest.(check bool) "durations nest" true
      (List.for_all
         (fun (c : Trace.span) -> c.Trace.duration_s <= outer.Trace.duration_s)
         outer.Trace.children)
  | roots -> Alcotest.failf "expected one root, got %d" (List.length roots)

let test_span_disabled () =
  (* Disabled collection records nothing and passes values through. *)
  let v = Trace.with_span "ghost" (fun () -> 42) in
  Alcotest.(check int) "value passes through" 42 v;
  Alcotest.(check int) "nothing recorded" 0 (List.length (Trace.roots ()))

let test_span_exception () =
  Trace.set_enabled true;
  Trace.reset ();
  (try Trace.with_span "boom" (fun () -> failwith "expected") with
   | Failure _ -> ());
  match Trace.roots () with
  | [ s ] ->
    Alcotest.(check (list (pair string string)))
      "error attr" [ ("error", "true") ] s.Trace.attrs
  | _ -> Alcotest.fail "span not closed on exception"

let test_span_timed () =
  (* with_span_timed reports elapsed time even while disabled. *)
  let v, dt = Trace.with_span_timed "t" (fun () -> 7) in
  Alcotest.(check int) "value" 7 v;
  Alcotest.(check bool) "non-negative duration" true (dt >= 0.);
  Alcotest.(check int) "still nothing recorded" 0 (List.length (Trace.roots ()))

(* ------------------------------------------------------------------ *)
(* Metrics                                                            *)
(* ------------------------------------------------------------------ *)

let test_counters () =
  Metrics.set_enabled true;
  Metrics.reset ();
  let c = Metrics.counter "test.obs.hits" in
  Metrics.incr c;
  Metrics.incr c;
  Metrics.add c 3;
  Metrics.add_named "test.obs.named" 4;
  let snap = Metrics.snapshot () in
  Alcotest.(check (option int))
    "counter total" (Some 5)
    (List.assoc_opt "test.obs.hits" snap.Metrics.counters);
  Alcotest.(check (option int))
    "named counter" (Some 4)
    (List.assoc_opt "test.obs.named" snap.Metrics.counters)

let test_counters_disabled () =
  let c = Metrics.counter "test.obs.cold" in
  Metrics.incr c;
  Metrics.add c 10;
  Metrics.observe_named "test.obs.cold_hist" 1.0;
  let snap = Metrics.snapshot () in
  Alcotest.(check (option int))
    "no count while disabled" None
    (List.assoc_opt "test.obs.cold" snap.Metrics.counters);
  Alcotest.(check bool) "no histogram while disabled" true
    (not (List.mem_assoc "test.obs.cold_hist" snap.Metrics.histograms))

let test_histograms () =
  Metrics.set_enabled true;
  Metrics.reset ();
  let h = Metrics.histogram "test.obs.sizes" in
  List.iter (Metrics.observe h) [ 2.; 8.; 5. ];
  let snap = Metrics.snapshot () in
  match List.assoc_opt "test.obs.sizes" snap.Metrics.histograms with
  | None -> Alcotest.fail "histogram missing from snapshot"
  | Some s ->
    Alcotest.(check int) "n" 3 s.Metrics.n;
    Alcotest.(check (float 1e-9)) "sum" 15. s.Metrics.sum;
    Alcotest.(check (float 1e-9)) "min" 2. s.Metrics.min_v;
    Alcotest.(check (float 1e-9)) "max" 8. s.Metrics.max_v

let test_metrics_reset () =
  Metrics.set_enabled true;
  Metrics.reset ();
  let c = Metrics.counter "test.obs.resettable" in
  Metrics.incr c;
  Metrics.reset ();
  Alcotest.(check int) "snapshot empty after reset" 0
    (List.length (Metrics.snapshot ()).Metrics.counters);
  (* The handle survives reset and keeps counting. *)
  Metrics.incr c;
  Alcotest.(check (option int))
    "handle still live" (Some 1)
    (List.assoc_opt "test.obs.resettable" (Metrics.snapshot ()).Metrics.counters)

(* ------------------------------------------------------------------ *)
(* JSON                                                               *)
(* ------------------------------------------------------------------ *)

let golden_json =
  "{\n\
  \  \"b\": true,\n\
  \  \"f\": 1.5,\n\
  \  \"i\": -3,\n\
  \  \"l\": [\n\
  \    1,\n\
  \    \"two\"\n\
  \  ],\n\
  \  \"n\": null,\n\
  \  \"s\": \"a\\\"b\\\\c\"\n\
   }\n"

let golden_value =
  Json.Obj
    [
      ("b", Json.Bool true);
      ("f", Json.Float 1.5);
      ("i", Json.Int (-3));
      ("l", Json.List [ Json.Int 1; Json.String "two" ]);
      ("n", Json.Null);
      ("s", Json.String "a\"b\\c");
    ]

let test_json_golden () =
  (* The printed form is stable — diffs of committed reports stay
     readable. *)
  Alcotest.(check string) "golden output" golden_json (Json.to_string golden_value)

let test_json_roundtrip () =
  match Json.parse (Json.to_string golden_value) with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok v -> Alcotest.(check bool) "round trip" true (Json.equal golden_value v)

let test_json_float_roundtrip () =
  let vals = [ 0.1; -1e-9; 3.141592653589793; 1e300; 2.0 ] in
  List.iter
    (fun f ->
      match Json.parse (Json.to_string (Json.Float f)) with
      | Ok (Json.Float g) ->
        Alcotest.(check (float 0.)) (Printf.sprintf "float %h" f) f g
      | Ok _ -> Alcotest.failf "float %h re-parsed as non-float" f
      | Error e -> Alcotest.failf "float %h: %s" f e)
    vals

let test_json_parse_errors () =
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "accepted invalid JSON %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2" ]

(* ------------------------------------------------------------------ *)
(* Run reports                                                        *)
(* ------------------------------------------------------------------ *)

let sample_report () =
  Trace.set_enabled true;
  Trace.reset ();
  Metrics.set_enabled true;
  Metrics.reset ();
  Trace.with_span "root" (fun () -> Trace.with_span "child" (fun () -> ()));
  Metrics.add_named "test.obs.report_counter" 2;
  Metrics.observe_named "test.obs.report_hist" 1.0;
  Runreport.make ~command:"test" ~circuits:[ "c17" ] ~seed:7
    ~spans:(Trace.roots ()) ~metrics:(Metrics.snapshot ()) ()

let test_report_validates () =
  match Runreport.validate (sample_report ()) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "report should validate: %s" e

let test_report_roundtrip_validates () =
  let text = Json.to_string (sample_report ()) in
  match Json.parse text with
  | Error e -> Alcotest.failf "report text unparsable: %s" e
  | Ok v ->
    (match Runreport.validate v with
     | Ok () -> ()
     | Error e -> Alcotest.failf "parsed report invalid: %s" e)

let test_report_rejects_bad_schema () =
  let bad =
    Json.Obj
      [
        ("schema", Json.Int 999);
        ("tool", Json.String "mutsamp");
        ("command", Json.String "x");
        ("spans", Json.List []);
        ("metrics", Json.Obj [ ("counters", Json.Obj []); ("histograms", Json.Obj []) ]);
      ]
  in
  match Runreport.validate bad with
  | Ok () -> Alcotest.fail "schema 999 accepted"
  | Error _ -> ()

let test_report_rejects_malformed_span () =
  let bad =
    Json.Obj
      [
        ("schema", Json.Int Runreport.schema_version);
        ("tool", Json.String "mutsamp");
        ("command", Json.String "x");
        ("spans", Json.List [ Json.Obj [ ("name", Json.String "s") ] ]);
        ("metrics", Json.Obj [ ("counters", Json.Obj []); ("histograms", Json.Obj []) ]);
      ]
  in
  match Runreport.validate bad with
  | Ok () -> Alcotest.fail "span without timing accepted"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Profile                                                            *)
(* ------------------------------------------------------------------ *)

let span ?(attrs = []) ?(track = 0) ?(children = []) ~start ~dur ~alloc name =
  {
    Trace.name;
    attrs;
    start_s = start;
    duration_s = dur;
    alloc_words = alloc;
    track;
    children;
  }

let test_profile_aggregation () =
  (* Two "inner" invocations under one root: counts and totals add up,
     root self time excludes child time. *)
  let roots =
    [
      span "root" ~start:0.0 ~dur:10.0 ~alloc:100.0
        ~children:
          [
            span "inner" ~start:1.0 ~dur:3.0 ~alloc:10.0;
            span "inner" ~start:5.0 ~dur:2.0 ~alloc:20.0;
          ];
    ]
  in
  let p = Profile.of_spans roots in
  Alcotest.(check (float 1e-9)) "wall" 10.0 p.Profile.wall_s;
  let row name =
    List.find (fun (r : Profile.row) -> r.Profile.name = name) p.Profile.rows
  in
  let inner = row "inner" in
  Alcotest.(check int) "inner count" 2 inner.Profile.count;
  Alcotest.(check (float 1e-9)) "inner total" 5.0 inner.Profile.total_s;
  Alcotest.(check (float 1e-9)) "inner self" 5.0 inner.Profile.self_s;
  Alcotest.(check (float 1e-9)) "inner alloc" 30.0 inner.Profile.alloc_words;
  let root = row "root" in
  Alcotest.(check (float 1e-9)) "root self excludes children" 5.0
    root.Profile.self_s;
  (* Sorted by self time, descending. *)
  Alcotest.(check (list string))
    "sort order" [ "inner"; "root" ]
    (List.map (fun (r : Profile.row) -> r.Profile.name) p.Profile.rows)

let test_profile_worker_spans_no_self () =
  (* Worker-track spans run concurrently with the coordinator span they
     were grafted under; their duration must not count as self time, so
     self times always sum to <= wall. *)
  let roots =
    [
      span "fsim" ~start:0.0 ~dur:4.0 ~alloc:0.0
        ~children:
          [
            span "shard" ~track:1 ~start:0.1 ~dur:3.9 ~alloc:0.0;
            span "shard" ~track:2 ~start:0.1 ~dur:3.8 ~alloc:0.0;
          ];
    ]
  in
  let p = Profile.of_spans roots in
  let shard =
    List.find (fun (r : Profile.row) -> r.Profile.name = "shard") p.Profile.rows
  in
  Alcotest.(check (float 1e-9)) "worker self is zero" 0.0 shard.Profile.self_s;
  Alcotest.(check (float 1e-9)) "worker total kept" 7.7 shard.Profile.total_s;
  let self_sum =
    List.fold_left (fun a (r : Profile.row) -> a +. r.Profile.self_s) 0.0
      p.Profile.rows
  in
  Alcotest.(check bool) "self sum <= wall" true
    (self_sum <= p.Profile.wall_s +. 1e-9)

let test_profile_self_clamped () =
  (* Clock skew can make children sum past the parent; self time clamps
     at zero rather than going negative. *)
  let roots =
    [
      span "p" ~start:0.0 ~dur:1.0 ~alloc:0.0
        ~children:[ span "c" ~start:0.0 ~dur:1.5 ~alloc:0.0 ];
    ]
  in
  let p = Profile.of_spans roots in
  let row =
    List.find (fun (r : Profile.row) -> r.Profile.name = "p") p.Profile.rows
  in
  Alcotest.(check (float 1e-9)) "clamped at zero" 0.0 row.Profile.self_s

(* ------------------------------------------------------------------ *)
(* Trace-event export                                                 *)
(* ------------------------------------------------------------------ *)

let test_traceout_structure () =
  let roots =
    [
      span "fsim" ~start:0.0 ~dur:0.004 ~alloc:10.0
        ~attrs:[ ("patterns", "64") ]
        ~children:[ span "shard" ~track:1 ~start:0.001 ~dur:0.002 ~alloc:5.0 ];
    ]
  in
  let tracks = [ (0, "main"); (1, "worker-1") ] in
  let json = Traceout.to_json ~tracks roots in
  let events =
    match Json.member "traceEvents" json with
    | Some (Json.List evs) -> evs
    | _ -> Alcotest.fail "traceEvents must be a list"
  in
  let ph e =
    match Json.member "ph" e with Some (Json.String s) -> s | _ -> "?"
  in
  let xs = List.filter (fun e -> ph e = "X") events in
  let ms = List.filter (fun e -> ph e = "M") events in
  Alcotest.(check int) "one X event per span" 2 (List.length xs);
  Alcotest.(check bool) "metadata events present" true (List.length ms >= 3);
  (* The shard event sits on tid 1 with microsecond timestamps. *)
  let shard =
    List.find
      (fun e -> Json.member "name" e = Some (Json.String "shard"))
      xs
  in
  Alcotest.(check bool) "tid is the track" true
    (Json.member "tid" shard = Some (Json.Int 1));
  (match Json.member "ts" shard with
   | Some (Json.Float ts) -> Alcotest.(check (float 1e-6)) "ts in us" 1000.0 ts
   | _ -> Alcotest.fail "ts missing");
  (* thread_name metadata exists for each track. *)
  let thread_names =
    List.filter_map
      (fun e ->
        if Json.member "name" e = Some (Json.String "thread_name") then
          match Json.member "args" e with
          | Some args ->
            (match Json.member "name" args with
             | Some (Json.String l) -> Some l
             | _ -> None)
          | None -> None
        else None)
      ms
  in
  Alcotest.(check (list string)) "track labels" [ "main"; "worker-1" ] thread_names;
  (* The whole document parses back — it is valid JSON. *)
  match Json.parse (Json.to_string json) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "trace-event JSON unparsable: %s" e

(* ------------------------------------------------------------------ *)
(* Prometheus exposition                                              *)
(* ------------------------------------------------------------------ *)

let test_prometheus_exposition () =
  Metrics.set_enabled true;
  Metrics.reset ();
  Metrics.add_named "test.obs.prom_counter" 7;
  Metrics.observe_named "test.obs.prom_hist" 2.0;
  Metrics.observe_named "test.obs.prom_hist" 4.0;
  let text = Metrics.to_prometheus (Metrics.snapshot ()) in
  let contains needle =
    let nl = String.length needle and hl = String.length text in
    let rec go i = i + nl <= hl && (String.sub text i nl = needle || go (i + 1)) in
    Alcotest.(check bool) (Printf.sprintf "contains %S" needle) true (go 0)
  in
  contains "# TYPE mutsamp_test_obs_prom_counter counter\n";
  contains "mutsamp_test_obs_prom_counter 7\n";
  contains "# TYPE mutsamp_test_obs_prom_hist summary\n";
  contains "mutsamp_test_obs_prom_hist_count 2\n";
  contains "mutsamp_test_obs_prom_hist_sum 6\n";
  contains "mutsamp_test_obs_prom_hist_min 2\n";
  contains "mutsamp_test_obs_prom_hist_max 4\n"

(* ------------------------------------------------------------------ *)
(* Benchdiff                                                          *)
(* ------------------------------------------------------------------ *)

let bench_report ?(throughput = []) ?(micro = []) ?(wall = 1.0) () =
  let obj kvs = Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) kvs) in
  let extra =
    (if throughput = [] then []
     else [ ("fsim_throughput_pairs_per_sec", obj throughput) ])
    @ if micro = [] then [] else [ ("micro_ns_per_run", obj micro) ]
  in
  Json.Obj
    ([
       ("schema", Json.Int Runreport.schema_version);
       ("tool", Json.String "mutsamp");
       ("command", Json.String "bench");
       ( "spans",
         Json.List
           [
             Json.Obj
               [
                 ("name", Json.String "bench");
                 ("start_s", Json.Float 0.0);
                 ("duration_s", Json.Float wall);
                 ("alloc_words", Json.Float 0.0);
               ];
           ] );
       ("metrics", Json.Obj [ ("counters", Json.Obj []); ("histograms", Json.Obj []) ]);
     ]
    @ extra)

let test_benchdiff_identical () =
  let r = bench_report ~throughput:[ ("c432", 1e6) ] ~micro:[ ("k", 100.0) ] () in
  let result = Benchdiff.compare_reports ~old_:r ~new_:r () in
  Alcotest.(check int) "no regressions" 0
    (List.length (Benchdiff.regressions result));
  Alcotest.(check int) "no missing keys" 0 (List.length result.Benchdiff.missing);
  Alcotest.(check int) "three deltas" 3 (List.length result.Benchdiff.deltas)

let test_benchdiff_throughput_regression () =
  (* Throughput is higher-better: a 30% drop past the 20% threshold
     regresses; a 30% gain does not. *)
  let old_ = bench_report ~throughput:[ ("c432", 1000.0) ] () in
  let slow = bench_report ~throughput:[ ("c432", 700.0) ] () in
  let fast = bench_report ~throughput:[ ("c432", 1300.0) ] () in
  let r1 = Benchdiff.compare_reports ~groups:[ "throughput" ] ~old_ ~new_:slow () in
  Alcotest.(check int) "drop regresses" 1 (List.length (Benchdiff.regressions r1));
  let r2 = Benchdiff.compare_reports ~groups:[ "throughput" ] ~old_ ~new_:fast () in
  Alcotest.(check int) "gain passes" 0 (List.length (Benchdiff.regressions r2))

let test_benchdiff_micro_direction () =
  (* Micro ns/run is lower-better: slower (bigger) regresses. *)
  let old_ = bench_report ~micro:[ ("kernel", 100.0) ] () in
  let slow = bench_report ~micro:[ ("kernel", 130.0) ] () in
  let fast = bench_report ~micro:[ ("kernel", 70.0) ] () in
  let r1 = Benchdiff.compare_reports ~groups:[ "micro" ] ~old_ ~new_:slow () in
  Alcotest.(check int) "slower regresses" 1 (List.length (Benchdiff.regressions r1));
  let r2 = Benchdiff.compare_reports ~groups:[ "micro" ] ~old_ ~new_:fast () in
  Alcotest.(check int) "faster passes" 0 (List.length (Benchdiff.regressions r2))

let test_benchdiff_threshold () =
  let old_ = bench_report ~throughput:[ ("c432", 1000.0) ] () in
  let new_ = bench_report ~throughput:[ ("c432", 850.0) ] () in
  (* A 15% drop passes at the default 20% but fails at 10%. *)
  let lax = Benchdiff.compare_reports ~groups:[ "throughput" ] ~old_ ~new_ () in
  Alcotest.(check int) "within default threshold" 0
    (List.length (Benchdiff.regressions lax));
  let strict =
    Benchdiff.compare_reports ~threshold_pct:10.0 ~groups:[ "throughput" ] ~old_
      ~new_ ()
  in
  Alcotest.(check int) "beyond strict threshold" 1
    (List.length (Benchdiff.regressions strict))

let test_benchdiff_wall_group () =
  (* Plain pipeline reports carry no bench sections; the wall group
     still gates on summed root-span duration. *)
  let old_ = bench_report ~wall:1.0 () in
  let slow = bench_report ~wall:2.0 () in
  let r = Benchdiff.compare_reports ~old_ ~new_:slow () in
  let regs = Benchdiff.regressions r in
  Alcotest.(check int) "wall regression flagged" 1 (List.length regs);
  Alcotest.(check string) "in the wall group" "wall"
    (List.hd regs).Benchdiff.group

let test_benchdiff_missing_keys () =
  (* A key present in only one report is reported missing, never as a
     regression. *)
  let old_ = bench_report ~throughput:[ ("c432", 1000.0); ("c499", 500.0) ] () in
  let new_ = bench_report ~throughput:[ ("c432", 1000.0) ] () in
  let r = Benchdiff.compare_reports ~groups:[ "throughput" ] ~old_ ~new_ () in
  Alcotest.(check int) "no regressions" 0 (List.length (Benchdiff.regressions r));
  Alcotest.(check (list (pair string string)))
    "missing listed" [ ("throughput", "c499") ] r.Benchdiff.missing

(* ------------------------------------------------------------------ *)
(* Profile / exec report sections                                     *)
(* ------------------------------------------------------------------ *)

let profile_section_json () =
  Profile.to_json
    (Profile.of_spans
       [
         span "root" ~start:0.0 ~dur:1.0 ~alloc:8.0
           ~children:[ span "c" ~track:1 ~start:0.1 ~dur:0.5 ~alloc:2.0 ];
       ])

let exec_section_json () =
  Json.Obj
    [
      ("jobs_requested", Json.Int 4);
      ("jobs", Json.Int 4);
      ( "histograms",
        Json.Obj
          [
            ( "exec.shard_seconds",
              Json.Obj
                [
                  ("n", Json.Int 4);
                  ("sum", Json.Float 0.02);
                  ("min", Json.Float 0.004);
                  ("max", Json.Float 0.006);
                ] );
          ] );
    ]

let test_report_accepts_profile_and_exec () =
  let report =
    Runreport.make ~command:"test"
      ~extra:
        [ ("profile", profile_section_json ()); ("exec", exec_section_json ()) ]
      ~spans:[] ~metrics:(Metrics.snapshot ()) ()
  in
  (match Runreport.validate report with
   | Ok () -> ()
   | Error e -> Alcotest.failf "profile+exec report should validate: %s" e);
  (* And survives a print/parse round trip. *)
  match Json.parse (Json.to_string report) with
  | Error e -> Alcotest.failf "unparsable: %s" e
  | Ok v ->
    (match Runreport.validate v with
     | Ok () -> ()
     | Error e -> Alcotest.failf "round-tripped report invalid: %s" e)

let test_report_rejects_malformed_profile_row () =
  let bad_profile =
    Json.Obj
      [
        ("wall_s", Json.Float 1.0);
        ( "rows",
          Json.List
            [ Json.Obj [ ("name", Json.String "x"); ("count", Json.String "2") ] ]
        );
      ]
  in
  let report =
    Runreport.make ~command:"test" ~extra:[ ("profile", bad_profile) ] ~spans:[]
      ~metrics:(Metrics.snapshot ()) ()
  in
  match Runreport.validate report with
  | Ok () -> Alcotest.fail "malformed profile row accepted"
  | Error _ -> ()

let test_report_rejects_malformed_exec () =
  let bad_exec =
    Json.Obj
      [
        ("jobs", Json.String "four");
      ]
  in
  let report =
    Runreport.make ~command:"test" ~extra:[ ("exec", bad_exec) ] ~spans:[]
      ~metrics:(Metrics.snapshot ()) ()
  in
  match Runreport.validate report with
  | Ok () -> Alcotest.fail "non-integer exec.jobs accepted"
  | Error _ -> ()

let test_report_span_track_field () =
  (* Spans may carry an integer track; anything else is rejected. *)
  let base track =
    Json.Obj
      [
        ("schema", Json.Int Runreport.schema_version);
        ("tool", Json.String "mutsamp");
        ("command", Json.String "x");
        ( "spans",
          Json.List
            [
              Json.Obj
                [
                  ("name", Json.String "s");
                  ("start_s", Json.Float 0.0);
                  ("duration_s", Json.Float 1.0);
                  ("alloc_words", Json.Float 0.0);
                  ("track", track);
                ];
            ] );
        ("metrics", Json.Obj [ ("counters", Json.Obj []); ("histograms", Json.Obj []) ]);
      ]
  in
  (match Runreport.validate (base (Json.Int 2)) with
   | Ok () -> ()
   | Error e -> Alcotest.failf "integer track rejected: %s" e);
  match Runreport.validate (base (Json.String "two")) with
  | Ok () -> Alcotest.fail "string track accepted"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Pipeline instrumentation                                           *)
(* ------------------------------------------------------------------ *)

let test_pipeline_prepare_spans () =
  Trace.set_enabled true;
  Trace.reset ();
  let e = Option.get (Registry.find "c17") in
  let (_ : Pipeline.t) = Pipeline.prepare (e.Registry.design ()) in
  match Trace.roots () with
  | [ prepare ] ->
    Alcotest.(check string) "root" "prepare" prepare.Trace.name;
    Alcotest.(check (list string))
      "phases" [ "synth"; "collapse"; "mutants" ]
      (List.map (fun (s : Trace.span) -> s.Trace.name) prepare.Trace.children);
    Alcotest.(check bool) "fault count attr" true
      (List.mem_assoc "faults" prepare.Trace.attrs)
  | roots -> Alcotest.failf "expected one root, got %d" (List.length roots)

let test_pipeline_fsim_counters () =
  Metrics.set_enabled true;
  Metrics.reset ();
  let e = Option.get (Registry.find "c17") in
  let p = Pipeline.prepare (e.Registry.design ()) in
  let r =
    Pipeline.fault_simulate p
      (patterns_of_codes p.Pipeline.netlist
         [| 0b01010; 0b11111; 0b00000; 0b10101 |])
  in
  let snap = Metrics.snapshot () in
  Alcotest.(check (option int))
    "patterns counted" (Some 4)
    (List.assoc_opt "fsim.patterns_simulated" snap.Metrics.counters);
  Alcotest.(check (option int))
    "detections counted" (Some r.Mutsamp_fault.Fsim.detected)
    (List.assoc_opt "fsim.faults_detected" snap.Metrics.counters)

let suite =
  [
    ( "obs",
      [
        Alcotest.test_case "span nesting" `Quick (with_clean_obs test_span_nesting);
        Alcotest.test_case "span disabled" `Quick (with_clean_obs test_span_disabled);
        Alcotest.test_case "span exception" `Quick (with_clean_obs test_span_exception);
        Alcotest.test_case "span timed" `Quick (with_clean_obs test_span_timed);
        Alcotest.test_case "counters" `Quick (with_clean_obs test_counters);
        Alcotest.test_case "counters disabled" `Quick
          (with_clean_obs test_counters_disabled);
        Alcotest.test_case "histograms" `Quick (with_clean_obs test_histograms);
        Alcotest.test_case "metrics reset" `Quick (with_clean_obs test_metrics_reset);
        Alcotest.test_case "json golden" `Quick test_json_golden;
        Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
        Alcotest.test_case "json float roundtrip" `Quick test_json_float_roundtrip;
        Alcotest.test_case "json parse errors" `Quick test_json_parse_errors;
        Alcotest.test_case "report validates" `Quick
          (with_clean_obs test_report_validates);
        Alcotest.test_case "report roundtrip validates" `Quick
          (with_clean_obs test_report_roundtrip_validates);
        Alcotest.test_case "report rejects bad schema" `Quick
          test_report_rejects_bad_schema;
        Alcotest.test_case "report rejects malformed span" `Quick
          test_report_rejects_malformed_span;
        Alcotest.test_case "profile aggregation" `Quick test_profile_aggregation;
        Alcotest.test_case "profile worker spans no self" `Quick
          test_profile_worker_spans_no_self;
        Alcotest.test_case "profile self clamped" `Quick test_profile_self_clamped;
        Alcotest.test_case "traceout structure" `Quick test_traceout_structure;
        Alcotest.test_case "prometheus exposition" `Quick
          (with_clean_obs test_prometheus_exposition);
        Alcotest.test_case "benchdiff identical" `Quick test_benchdiff_identical;
        Alcotest.test_case "benchdiff throughput regression" `Quick
          test_benchdiff_throughput_regression;
        Alcotest.test_case "benchdiff micro direction" `Quick
          test_benchdiff_micro_direction;
        Alcotest.test_case "benchdiff threshold" `Quick test_benchdiff_threshold;
        Alcotest.test_case "benchdiff wall group" `Quick test_benchdiff_wall_group;
        Alcotest.test_case "benchdiff missing keys" `Quick
          test_benchdiff_missing_keys;
        Alcotest.test_case "report accepts profile and exec" `Quick
          (with_clean_obs test_report_accepts_profile_and_exec);
        Alcotest.test_case "report rejects malformed profile row" `Quick
          (with_clean_obs test_report_rejects_malformed_profile_row);
        Alcotest.test_case "report rejects malformed exec" `Quick
          (with_clean_obs test_report_rejects_malformed_exec);
        Alcotest.test_case "report span track field" `Quick
          test_report_span_track_field;
        Alcotest.test_case "pipeline prepare spans" `Quick
          (with_clean_obs test_pipeline_prepare_spans);
        Alcotest.test_case "pipeline fsim counters" `Quick
          (with_clean_obs test_pipeline_fsim_counters);
      ] );
  ]
